//! Tables 1–6 of the paper.

use crate::experiments::dataset::{
    medium_dataset, short_dataset, weekly_load_series, ExperimentConfig,
};
use crate::monitor::MonitorOutput;
use nws_forecast::{evaluate_one_step, NwsForecaster};
use nws_stats::{hurst_rs, mean_absolute_pair_error, population_variance};
use nws_timeseries::{aggregate_mean, aggregate_series, Series};

/// One host's value per measurement method, in the paper's column order.
#[derive(Debug, Clone, PartialEq)]
pub struct MethodRow {
    /// Host name.
    pub host: String,
    /// Load-average column.
    pub load: f64,
    /// vmstat column.
    pub vmstat: f64,
    /// NWS hybrid column.
    pub hybrid: f64,
}

impl MethodRow {
    /// Values in column order.
    pub fn values(&self) -> [f64; 3] {
        [self.load, self.vmstat, self.hybrid]
    }
}

/// A host × method table (the shape of Tables 1, 2, 3, 5, 6).
#[derive(Debug, Clone, PartialEq)]
pub struct MethodTable {
    /// Table title.
    pub title: String,
    /// One row per host, in the paper's order.
    pub rows: Vec<MethodRow>,
}

impl MethodTable {
    /// Looks up a row by host name.
    pub fn row(&self, host: &str) -> Option<&MethodRow> {
        self.rows.iter().find(|r| r.host == host)
    }
}

// ---------------------------------------------------------------------------
// Table 1 — measurement error
// ---------------------------------------------------------------------------

/// Table 1: mean absolute measurement error per host and method —
/// `mean |measurement_t − test observation_t|` (Eq. 3), pairing each test
/// run with "the measurement taken most immediately before" it.
pub fn table1_from(outputs: &[MonitorOutput]) -> MethodTable {
    let rows = outputs
        .iter()
        .map(|out| {
            let obs: Vec<f64> = out.tests.iter().map(|t| t.value).collect();
            let prior = |f: fn(&crate::monitor::TestObservation) -> f64| -> Vec<f64> {
                out.tests.iter().map(f).collect()
            };
            MethodRow {
                host: out.host.clone(),
                load: mean_absolute_pair_error(&prior(|t| t.prior.load), &obs).unwrap_or(0.0),
                vmstat: mean_absolute_pair_error(&prior(|t| t.prior.vmstat), &obs).unwrap_or(0.0),
                hybrid: mean_absolute_pair_error(&prior(|t| t.prior.hybrid), &obs).unwrap_or(0.0),
            }
        })
        .collect();
    MethodTable {
        title: "Table 1: Mean Absolute Measurement Errors".into(),
        rows,
    }
}

/// Convenience wrapper: collects the short dataset and computes Table 1.
pub fn table1(cfg: &ExperimentConfig) -> MethodTable {
    table1_from(&short_dataset(cfg))
}

// ---------------------------------------------------------------------------
// Table 2 — true forecasting error
// ---------------------------------------------------------------------------

/// Mean absolute error of NWS forecasts taken at each test instant against
/// the test observation (the paper's Eq. 4).
///
/// The forecaster consumes the measurement series in time order; at each
/// test start, the forecast standing at that moment (built from every
/// measurement at or before the test start) is scored against the test
/// process's observation.
pub fn true_forecast_error(series: &Series, tests: &[(f64, f64)]) -> Option<f64> {
    let mut nws = NwsForecaster::nws_default();
    let mut errors = Vec::with_capacity(tests.len());
    let mut test_iter = tests.iter().peekable();
    for point in series.iter() {
        // Score any test that starts before this measurement arrives.
        while let Some(&&(t_start, t_val)) = test_iter.peek() {
            if t_start < point.time {
                if let Some(f) = nws.forecast() {
                    errors.push((f.value - t_val).abs());
                }
                test_iter.next();
            } else {
                break;
            }
        }
        nws.update(point.value);
    }
    // Tests after the last measurement.
    for &(_, t_val) in test_iter {
        if let Some(f) = nws.forecast() {
            errors.push((f.value - t_val).abs());
        }
    }
    if errors.is_empty() {
        None
    } else {
        Some(errors.iter().sum::<f64>() / errors.len() as f64)
    }
}

/// Table 2: mean true forecasting errors per host and method.
pub fn table2_from(outputs: &[MonitorOutput]) -> MethodTable {
    let rows = outputs
        .iter()
        .map(|out| {
            // Tests start strictly after the slot measurement they follow,
            // so compare with `start + ε` to include that measurement.
            let tests: Vec<(f64, f64)> = out
                .tests
                .iter()
                .map(|t| (t.start + 1e-6, t.value))
                .collect();
            MethodRow {
                host: out.host.clone(),
                load: true_forecast_error(&out.series.load, &tests).unwrap_or(0.0),
                vmstat: true_forecast_error(&out.series.vmstat, &tests).unwrap_or(0.0),
                hybrid: true_forecast_error(&out.series.hybrid, &tests).unwrap_or(0.0),
            }
        })
        .collect();
    MethodTable {
        title: "Table 2: Mean True Forecasting Errors".into(),
        rows,
    }
}

/// Convenience wrapper for Table 2.
pub fn table2(cfg: &ExperimentConfig) -> MethodTable {
    table2_from(&short_dataset(cfg))
}

// ---------------------------------------------------------------------------
// Table 3 — one-step-ahead prediction error
// ---------------------------------------------------------------------------

fn one_step_mae(values: &[f64]) -> f64 {
    let mut nws = NwsForecaster::nws_default();
    evaluate_one_step(&mut nws, values)
        .map(|r| r.mae)
        .unwrap_or(0.0)
}

/// Table 3: mean absolute one-step-ahead prediction error (Eq. 5) — how
/// well the NWS predicts each series' *next measurement*.
pub fn table3_from(outputs: &[MonitorOutput]) -> MethodTable {
    let rows = outputs
        .iter()
        .map(|out| MethodRow {
            host: out.host.clone(),
            load: one_step_mae(out.series.load.values()),
            vmstat: one_step_mae(out.series.vmstat.values()),
            hybrid: one_step_mae(out.series.hybrid.values()),
        })
        .collect();
    MethodTable {
        title: "Table 3: Mean Absolute One-step-ahead Prediction Errors".into(),
        rows,
    }
}

/// Convenience wrapper for Table 3.
pub fn table3(cfg: &ExperimentConfig) -> MethodTable {
    table3_from(&short_dataset(cfg))
}

// ---------------------------------------------------------------------------
// Table 4 — Hurst estimates and aggregation variances
// ---------------------------------------------------------------------------

/// One row of Table 4: the R/S Hurst estimate and the variance of each
/// method's original series vs its 5-minute (`m = 30`) block means.
#[derive(Debug, Clone, PartialEq)]
pub struct Table4Row {
    /// Host name.
    pub host: String,
    /// R/S (pox plot) Hurst estimate from the week-long load trace.
    pub hurst: f64,
    /// `(original variance, 300 s aggregated variance)` per method, in
    /// load/vmstat/hybrid order.
    pub variances: [(f64, f64); 3],
}

/// Table 4 from already-collected datasets.
///
/// `weekly_load` supplies the Hurst column; `outputs` (the 24-hour runs)
/// supply the variance columns, with aggregation level `m = 30` (5 minutes
/// of 10-second measurements).
pub fn table4_from(outputs: &[MonitorOutput], weekly_load: &[Series]) -> Vec<Table4Row> {
    assert_eq!(outputs.len(), weekly_load.len(), "datasets must align");
    outputs
        .iter()
        .zip(weekly_load)
        .map(|(out, week)| {
            let hurst = hurst_rs(week.values(), 10).map(|e| e.h).unwrap_or(f64::NAN);
            let var_pair = |s: &Series| {
                let orig = population_variance(s.values()).unwrap_or(0.0);
                let agg = population_variance(&aggregate_mean(s.values(), 30)).unwrap_or(0.0);
                (orig, agg)
            };
            Table4Row {
                host: out.host.clone(),
                hurst,
                variances: [
                    var_pair(&out.series.load),
                    var_pair(&out.series.vmstat),
                    var_pair(&out.series.hybrid),
                ],
            }
        })
        .collect()
}

/// Convenience wrapper for Table 4 (collects both datasets).
pub fn table4(cfg: &ExperimentConfig) -> Vec<Table4Row> {
    table4_from(&short_dataset(cfg), &weekly_load_series(cfg))
}

// ---------------------------------------------------------------------------
// Table 5 — prediction error on 5-minute aggregated series
// ---------------------------------------------------------------------------

/// Table 5: mean absolute one-step-ahead prediction error on the `m = 30`
/// aggregated (5-minute mean) series.
pub fn table5_from(outputs: &[MonitorOutput]) -> MethodTable {
    let rows = outputs
        .iter()
        .map(|out| {
            let agg_mae = |s: &Series| one_step_mae(aggregate_series(s, 30).values());
            MethodRow {
                host: out.host.clone(),
                load: agg_mae(&out.series.load),
                vmstat: agg_mae(&out.series.vmstat),
                hybrid: agg_mae(&out.series.hybrid),
            }
        })
        .collect();
    MethodTable {
        title: "Table 5: One-step-ahead Prediction Errors, 5 Minute Aggregates".into(),
        rows,
    }
}

/// Convenience wrapper for Table 5.
pub fn table5(cfg: &ExperimentConfig) -> MethodTable {
    table5_from(&short_dataset(cfg))
}

// ---------------------------------------------------------------------------
// Table 6 — true forecasting error for 5-minute averages
// ---------------------------------------------------------------------------

/// Table 6: mean true forecasting error for 5-minute average availability.
///
/// The measurement series is aggregated into 5-minute block means (`m = 30`)
/// and forecast one step ahead; each forecast standing when a 5-minute test
/// process begins is scored against what that test process observed.
pub fn table6_from(outputs: &[MonitorOutput]) -> MethodTable {
    let rows = outputs
        .iter()
        .map(|out| {
            let tests: Vec<(f64, f64)> = out
                .tests
                .iter()
                .map(|t| (t.start + 1e-6, t.value))
                .collect();
            let agg_err = |s: &Series| {
                let agg = aggregate_series(s, 30);
                true_forecast_error(&agg, &tests).unwrap_or(0.0)
            };
            MethodRow {
                host: out.host.clone(),
                load: agg_err(&out.series.load),
                vmstat: agg_err(&out.series.vmstat),
                hybrid: agg_err(&out.series.hybrid),
            }
        })
        .collect();
    MethodTable {
        title: "Table 6: Mean True Forecasting Errors, 5 Minute Averages".into(),
        rows,
    }
}

/// Convenience wrapper for Table 6 (uses the medium-term dataset).
pub fn table6(cfg: &ExperimentConfig) -> MethodTable {
    table6_from(&medium_dataset(cfg))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::dataset::short_dataset;

    fn quick_outputs() -> Vec<MonitorOutput> {
        short_dataset(&ExperimentConfig::quick())
    }

    #[test]
    fn table1_rows_cover_hosts_and_are_fractions() {
        let t = table1_from(&quick_outputs());
        assert_eq!(t.rows.len(), 6);
        for r in &t.rows {
            for v in r.values() {
                assert!((0.0..=1.0).contains(&v), "{}: {v}", r.host);
            }
        }
    }

    #[test]
    fn table1_pathologies_have_the_papers_shape() {
        // Even at quick scale: conundrum's passive methods err far more
        // than its hybrid; kongo's hybrid errs far more than its passive
        // methods.
        let t = table1_from(&quick_outputs());
        let con = t.row("conundrum").unwrap();
        assert!(
            con.load > con.hybrid + 0.1,
            "conundrum: load {} vs hybrid {}",
            con.load,
            con.hybrid
        );
        let kongo = t.row("kongo").unwrap();
        assert!(
            kongo.hybrid > kongo.load + 0.1,
            "kongo: hybrid {} vs load {}",
            kongo.hybrid,
            kongo.load
        );
    }

    #[test]
    fn table2_close_to_table1() {
        // "Measurement and forecasting accuracy are approximately the
        // same" — true errors should be in the same ballpark as
        // measurement errors.
        let outputs = quick_outputs();
        let t1 = table1_from(&outputs);
        let t2 = table2_from(&outputs);
        for (r1, r2) in t1.rows.iter().zip(&t2.rows) {
            for (a, b) in r1.values().iter().zip(r2.values()) {
                assert!((a - b).abs() < 0.2, "{}: {a} vs {b}", r1.host);
            }
        }
    }

    #[test]
    fn table3_prediction_errors_are_small() {
        // The paper's headline: one-step prediction error < 5% everywhere.
        let t = table3_from(&quick_outputs());
        for r in &t.rows {
            for v in r.values() {
                assert!(v < 0.10, "{}: one-step error {v}", r.host);
            }
        }
    }

    #[test]
    fn table4_variance_mostly_drops_under_aggregation() {
        let cfg = ExperimentConfig::quick();
        let rows = table4_from(&short_dataset(&cfg), &weekly_load_series(&cfg));
        assert_eq!(rows.len(), 6);
        let mut drops = 0;
        let mut total = 0;
        for r in &rows {
            assert!(r.hurst.is_finite());
            for (orig, agg) in r.variances {
                total += 1;
                if agg <= orig {
                    drops += 1;
                }
            }
        }
        // The paper: all but 2 of 18 cells drop. At quick scale allow some
        // slack but require a clear majority.
        assert!(drops * 3 >= total * 2, "only {drops}/{total} dropped");
    }

    #[test]
    fn table4_hurst_in_plausible_band() {
        let cfg = ExperimentConfig::quick();
        let rows = table4_from(&short_dataset(&cfg), &weekly_load_series(&cfg));
        for r in &rows {
            assert!(
                (0.5..1.05).contains(&r.hurst),
                "{}: H = {}",
                r.host,
                r.hurst
            );
        }
    }

    #[test]
    fn table5_and_table6_compute() {
        let cfg = ExperimentConfig::quick();
        let outputs = short_dataset(&cfg);
        let t5 = table5_from(&outputs);
        for r in &t5.rows {
            for v in r.values() {
                assert!((0.0..=1.0).contains(&v));
            }
        }
        let med = medium_dataset(&cfg);
        let t6 = table6_from(&med);
        assert_eq!(t6.rows.len(), 6);
        for r in &t6.rows {
            for v in r.values() {
                assert!((0.0..=1.0).contains(&v));
            }
        }
    }

    #[test]
    fn true_forecast_error_scores_every_test() {
        let s = Series::from_values("m", 0.0, 10.0, vec![0.5; 50]).unwrap();
        // Tests embedded mid-series and after its end.
        let tests = vec![(105.0, 0.7), (255.0, 0.7), (1000.0, 0.7)];
        let err = true_forecast_error(&s, &tests).unwrap();
        assert!((err - 0.2).abs() < 1e-9, "err = {err}");
    }

    #[test]
    fn true_forecast_error_empty_cases() {
        let s = Series::from_values("m", 0.0, 10.0, vec![0.5; 5]).unwrap();
        assert_eq!(true_forecast_error(&s, &[]), None);
        // A test before any measurement has no standing forecast.
        let only_early = vec![(-5.0, 0.9)];
        assert_eq!(true_forecast_error(&s, &only_early), None);
    }
}
