//! Drivers that regenerate every table and figure in the paper.
//!
//! Each experiment has a `*_from(dataset)` form (pure computation over
//! already-collected monitor outputs, so the repro harness collects each
//! dataset once) and a convenience form that builds its own dataset from an
//! [`ExperimentConfig`].
//!
//! | Paper artifact | Function |
//! |---|---|
//! | Table 1 (measurement error) | [`tables::table1_from`] |
//! | Table 2 (true forecasting error) | [`tables::table2_from`] |
//! | Table 3 (one-step prediction error) | [`tables::table3_from`] |
//! | Table 4 (Hurst + aggregation variance) | [`tables::table4_from`] |
//! | Table 5 (aggregated prediction error) | [`tables::table5_from`] |
//! | Table 6 (5-min true forecasting error) | [`tables::table6_from`] |
//! | Figure 1 (availability traces) | [`figures::fig1_from`] |
//! | Figure 2 (autocorrelations) | [`figures::fig2_from`] |
//! | Figure 3 (pox plots) | [`figures::fig3_from`] |
//! | Figure 4 (5-min aggregated traces) | [`figures::fig4_from`] |
//! | Forecaster ablation | [`ablations::forecaster_ablation`] |
//! | Probe-bias ablation | [`ablations::bias_ablation`] |
//! | Probe-duration sweep | [`ablations::probe_duration_sweep`] |
//! | Aggregation-level sweep (§3.2 hypothesis) | [`extensions::aggregation_sweep`] |
//! | Forecast-horizon sweep | [`extensions::horizon_sweep`] |
//! | Seed robustness of Table 1 | [`extensions::seed_robustness`] |
//! | Host-load statistics (Dinda–O'Halloran style) | [`loadstats::load_statistics`] |

pub mod ablations;
pub mod dataset;
pub mod extensions;
pub mod figures;
pub mod loadstats;
pub mod tables;

pub use ablations::{bias_ablation, forecaster_ablation, probe_duration_sweep};
pub use dataset::{
    all_datasets, medium_dataset, short_dataset, weekly_load_series, ExperimentConfig,
};
pub use extensions::{
    aggregation_sweep, horizon_sweep, seed_robustness, sweep_dataset, AggregationPoint,
    HorizonPoint, RobustnessRow,
};
pub use figures::{fig1_from, fig2_from, fig3_from, fig4_from, FigSeries, PoxFigure};
pub use loadstats::{load_statistics, LoadStatsRow};
pub use tables::{
    table1_from, table2_from, table3_from, table4_from, table5_from, table6_from, MethodRow,
    MethodTable, Table4Row,
};
