//! Figures 1–4 of the paper (as data series; rendering lives in
//! [`crate::plot`] and the repro harness writes CSV for external plotting).

use crate::experiments::dataset::{
    medium_dataset, short_dataset, weekly_load_series, ExperimentConfig,
};
use crate::monitor::MonitorOutput;
use nws_stats::{clamped_autocorrelation, hurst_rs, pox_plot, HurstEstimate, PoxPoint};
use nws_timeseries::{aggregate_series, Series};

/// A figure built from one series per featured host (thing1 and thing2).
#[derive(Debug, Clone)]
pub struct FigSeries {
    /// Figure caption.
    pub title: String,
    /// `(host name, series)` pairs.
    pub series: Vec<(String, Series)>,
}

/// Figure 3's content for one host: the pox-plot point cloud and the
/// least-squares Hurst fit.
#[derive(Debug, Clone)]
pub struct PoxFigure {
    /// Host name.
    pub host: String,
    /// All `(log10 d, log10 R/S)` samples.
    pub points: Vec<PoxPoint>,
    /// The per-`d` mean regression whose slope is the Hurst estimate.
    pub estimate: HurstEstimate,
}

/// The two hosts the paper's figures feature.
const FEATURED: [&str; 2] = ["thing1", "thing2"];

fn featured(outputs: &[MonitorOutput]) -> Vec<&MonitorOutput> {
    FEATURED
        .iter()
        .filter_map(|name| outputs.iter().find(|o| o.host == *name))
        .collect()
}

/// Figure 1: 24-hour CPU availability traces (load-average method) for
/// thing1 and thing2.
pub fn fig1_from(outputs: &[MonitorOutput]) -> FigSeries {
    FigSeries {
        title: "Figure 1: CPU Availability Measurements (Unix Load Average)".into(),
        series: featured(outputs)
            .into_iter()
            .map(|o| (o.host.clone(), o.series.load.clone()))
            .collect(),
    }
}

/// Convenience wrapper for Figure 1.
pub fn fig1(cfg: &ExperimentConfig) -> FigSeries {
    fig1_from(&short_dataset(cfg))
}

/// Figure 2: the first 360 autocorrelations of the Figure 1 series.
///
/// Each output series is indexed by lag (1 lag = one 10 s measurement), so
/// lag 360 is one hour of history.
pub fn fig2_from(outputs: &[MonitorOutput]) -> FigSeries {
    let series = featured(outputs)
        .into_iter()
        .map(|o| {
            // Short smoke-tier series degrade to fewer lags rather than
            // silently skipping the plot.
            let rho = clamped_autocorrelation(o.series.load.values(), 360).unwrap_or_default();
            let s = Series::from_values(format!("{}-acf", o.host), 0.0, 1.0, rho)
                .expect("lags are increasing");
            (o.host.clone(), s)
        })
        .collect();
    FigSeries {
        title: "Figure 2: CPU Availability Autocorrelations (Unix Load Average)".into(),
        series,
    }
}

/// Convenience wrapper for Figure 2.
pub fn fig2(cfg: &ExperimentConfig) -> FigSeries {
    fig2_from(&short_dataset(cfg))
}

/// Figure 3: R/S pox plots with the least-squares Hurst fit, from the
/// week-long load-average traces of thing1 and thing2.
pub fn fig3_from(weekly_load: &[Series], host_names: &[&str]) -> Vec<PoxFigure> {
    weekly_load
        .iter()
        .zip(host_names)
        .filter(|(_, name)| FEATURED.contains(*name))
        .filter_map(|(series, name)| {
            let estimate = hurst_rs(series.values(), 10)?;
            Some(PoxFigure {
                host: (*name).to_string(),
                points: pox_plot(series.values(), 10),
                estimate,
            })
        })
        .collect()
}

/// Convenience wrapper for Figure 3.
pub fn fig3(cfg: &ExperimentConfig) -> Vec<PoxFigure> {
    let weekly = weekly_load_series(cfg);
    fig3_from(&weekly, &nws_sim::UCSD_HOST_NAMES)
}

/// Figure 4: 5-minute aggregated availability (load-average method) from
/// the medium-term runs — the periodic signature of the hourly 5-minute
/// test process is visible in these series.
pub fn fig4_from(outputs: &[MonitorOutput]) -> FigSeries {
    FigSeries {
        title: "Figure 4: 5 Minute Aggregated CPU Availability (Unix Load Average)".into(),
        series: featured(outputs)
            .into_iter()
            .map(|o| (o.host.clone(), aggregate_series(&o.series.load, 30)))
            .collect(),
    }
}

/// Convenience wrapper for Figure 4.
pub fn fig4(cfg: &ExperimentConfig) -> FigSeries {
    fig4_from(&medium_dataset(cfg))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::dataset::short_dataset;

    #[test]
    fn fig1_features_thing1_and_thing2() {
        let cfg = ExperimentConfig::quick();
        let f = fig1_from(&short_dataset(&cfg));
        let hosts: Vec<&str> = f.series.iter().map(|(h, _)| h.as_str()).collect();
        assert_eq!(hosts, vec!["thing1", "thing2"]);
        for (_, s) in &f.series {
            assert_eq!(s.len(), 360);
        }
    }

    #[test]
    fn fig2_acf_starts_at_one_and_is_bounded() {
        // At quick scale (1 simulated hour) only the short-lag structure is
        // statistically stable; the slow-decay claim is asserted at full
        // scale below.
        let cfg = ExperimentConfig::quick();
        let f = fig2_from(&short_dataset(&cfg));
        for (host, s) in &f.series {
            let rho = s.values();
            assert!((rho[0] - 1.0).abs() < 1e-9, "{host}: rho(0) != 1");
            assert!(rho[1] > 0.5, "{host}: rho(1) = {}", rho[1]);
            assert!(rho.iter().all(|r| r.abs() <= 1.0 + 1e-9));
        }
    }

    #[test]
    #[ignore = "full-scale (24 h) run; exercised by the repro harness"]
    fn fig2_acf_decays_slowly_at_full_scale() {
        let cfg = ExperimentConfig::default();
        let f = fig2_from(&short_dataset(&cfg));
        for (host, s) in &f.series {
            let rho = s.values();
            // Long-range dependence: correlation persists at lag 30 (5 min).
            assert!(rho[30] > 0.15, "{host}: rho(30) = {}", rho[30]);
        }
    }

    #[test]
    fn fig3_hurst_between_half_and_one() {
        let cfg = ExperimentConfig::quick();
        let weekly = weekly_load_series(&cfg);
        let figs = fig3_from(&weekly, &nws_sim::UCSD_HOST_NAMES);
        assert_eq!(figs.len(), 2);
        for f in &figs {
            assert!(
                f.estimate.h > 0.5 && f.estimate.h < 1.05,
                "{}: H = {}",
                f.host,
                f.estimate.h
            );
            assert!(f.points.len() > 50);
        }
    }

    #[test]
    fn fig4_has_five_minute_resolution() {
        let cfg = ExperimentConfig::quick();
        let f = fig4_from(&medium_dataset(&cfg));
        for (_, s) in &f.series {
            assert_eq!(s.len(), 12); // 3600 s / 300 s
            assert!((s.mean_dt().unwrap() - 300.0).abs() < 1.0);
        }
    }
}
