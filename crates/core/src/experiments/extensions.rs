//! Extension experiments beyond the paper's tables.
//!
//! - [`aggregation_sweep`] tests the paper's §3.2 hypothesis directly:
//!   "smoothing may be more effective for certain time frames (aggregation
//!   levels) than for others … in general, however, the improvement should
//!   be small and there is no trend as a function of aggregation level
//!   that we can detect." We sweep `m` and report one-step error per
//!   level.
//! - [`horizon_sweep`] measures how prediction degrades with lead time: at
//!   each time `t` the standing NWS forecast is scored against the
//!   measurement `k` steps ahead, for a ladder of horizons — the bridge
//!   between the paper's one-step results and the long-term forecasting it
//!   leaves to future work.
//! - [`seed_robustness`] reruns Table 1 under many seeds and reports
//!   per-cell means and standard deviations — evidence that the reproduced
//!   shape is a property of the model, not of one lucky realization.

use crate::experiments::dataset::{short_dataset, ExperimentConfig};
use crate::experiments::tables::table1_from;
use crate::monitor::{Monitor, MonitorConfig, MonitorOutput};
use nws_forecast::{evaluate_one_step, NwsForecaster};
use nws_runtime::parallel_map;
use nws_sim::HostProfile;
use nws_timeseries::aggregate_mean;

/// One row of the aggregation sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct AggregationPoint {
    /// Aggregation level (measurements per block; 1 = unaggregated 10 s).
    pub m: usize,
    /// Block span in seconds.
    pub span: f64,
    /// One-step MAE on the aggregated series, per method
    /// (load/vmstat/hybrid).
    pub mae: [f64; 3],
    /// Points in the aggregated series.
    pub n: usize,
}

/// Sweeps aggregation levels on one host's 24-hour series.
pub fn aggregation_sweep(output: &MonitorOutput, levels: &[usize]) -> Vec<AggregationPoint> {
    // Each level replays three forecaster streams from scratch; the levels
    // are independent, so they fan out across worker threads.
    parallel_map(levels.to_vec(), |m| {
        let mae = [
            &output.series.load,
            &output.series.vmstat,
            &output.series.hybrid,
        ]
        .map(|s| {
            let agg = aggregate_mean(s.values(), m);
            let mut nws = NwsForecaster::nws_default();
            evaluate_one_step(&mut nws, &agg)
                .map(|r| r.mae)
                .unwrap_or(f64::NAN)
        });
        let n = output.series.load.len() / m;
        AggregationPoint {
            m,
            span: m as f64 * 10.0,
            mae,
            n,
        }
    })
}

/// One row of the horizon sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct HorizonPoint {
    /// Lead time in measurement steps (1 = the paper's one-step case).
    pub k: usize,
    /// Lead time in seconds.
    pub lead: f64,
    /// MAE of the standing forecast against the measurement `k` steps
    /// ahead, per method.
    pub mae: [f64; 3],
}

/// Scores the standing NWS forecast at horizons `ks` on one host's series.
pub fn horizon_sweep(output: &MonitorOutput, ks: &[usize]) -> Vec<HorizonPoint> {
    // Precompute each method's forecast-at-time-t stream once.
    let methods = [
        &output.series.load,
        &output.series.vmstat,
        &output.series.hybrid,
    ];
    let forecast_streams: Vec<Vec<Option<f64>>> = parallel_map(methods.to_vec(), |s| {
        let mut nws = NwsForecaster::nws_default();
        s.values()
            .iter()
            .map(|&v| {
                let standing = nws.forecast().map(|f| f.value);
                nws.update(v);
                standing
            })
            .collect()
    });
    for &k in ks {
        assert!(k >= 1, "horizon must be at least one step");
    }
    parallel_map(ks.to_vec(), |k| {
        let mae = [0, 1, 2].map(|mi| {
            let values = methods[mi].values();
            let stream = &forecast_streams[mi];
            let mut acc = 0.0;
            let mut n = 0usize;
            // The forecast standing just before index t (stream[t]) is
            // scored against the value k-1 further on: stream[t] already
            // is the 1-step forecast of values[t].
            for t in 0..values.len().saturating_sub(k - 1) {
                if let Some(f) = stream[t] {
                    acc += (f - values[t + k - 1]).abs();
                    n += 1;
                }
            }
            if n == 0 {
                f64::NAN
            } else {
                acc / n as f64
            }
        });
        HorizonPoint {
            k,
            lead: k as f64 * 10.0,
            mae,
        }
    })
}

/// Per-cell mean and standard deviation of Table 1 across seeds.
#[derive(Debug, Clone)]
pub struct RobustnessRow {
    /// Host name.
    pub host: String,
    /// `(mean, std)` per method.
    pub cells: [(f64, f64); 3],
}

/// Reruns Table 1 for each seed and aggregates per cell.
pub fn seed_robustness(base: &ExperimentConfig, seeds: &[u64]) -> Vec<RobustnessRow> {
    assert!(!seeds.is_empty(), "need at least one seed");
    // Each seed is a full 6-host monitoring day. The outer sweep fans out
    // over seeds so cores stay busy even at the tail of a seed's run; the
    // nested per-host fan-out inside `short_dataset` briefly oversubscribes
    // (bounded by seeds × hosts threads), which the OS absorbs and which
    // cannot affect the result order.
    let tables: Vec<_> = parallel_map(seeds.to_vec(), |seed| {
        table1_from(&short_dataset(&ExperimentConfig { seed, ..*base }))
    });
    let hosts: Vec<String> = tables[0].rows.iter().map(|r| r.host.clone()).collect();
    hosts
        .iter()
        .enumerate()
        .map(|(hi, host)| {
            let cells = [0, 1, 2].map(|mi| {
                let samples: Vec<f64> = tables.iter().map(|t| t.rows[hi].values()[mi]).collect();
                let mean = samples.iter().sum::<f64>() / samples.len() as f64;
                let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>()
                    / samples.len() as f64;
                (mean, var.sqrt())
            });
            RobustnessRow {
                host: host.clone(),
                cells,
            }
        })
        .collect()
}

/// Collects one host's 24-hour monitor output without test processes
/// (shared by the sweeps, which only need the measurement series).
pub fn sweep_dataset(cfg: &ExperimentConfig, host: HostProfile) -> MonitorOutput {
    let monitor = Monitor::new(MonitorConfig {
        duration: cfg.duration,
        warmup: cfg.warmup,
        test_period: None,
        ..MonitorConfig::default()
    });
    let mut h = host.build(cfg.seed ^ 0x51ee9);
    monitor.run(&mut h)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_output() -> MonitorOutput {
        sweep_dataset(&ExperimentConfig::quick(), HostProfile::Thing2)
    }

    #[test]
    fn aggregation_sweep_covers_levels() {
        let out = quick_output();
        let sweep = aggregation_sweep(&out, &[1, 3, 6, 30]);
        assert_eq!(sweep.len(), 4);
        assert_eq!(sweep[0].m, 1);
        assert_eq!(sweep[0].span, 10.0);
        assert_eq!(sweep[3].span, 300.0);
        for p in &sweep {
            assert_eq!(p.n, out.series.load.len() / p.m);
            for v in p.mae {
                assert!(v.is_finite() && (0.0..=1.0).contains(&v), "m={}: {v}", p.m);
            }
        }
    }

    #[test]
    fn horizon_error_grows_with_lead_time() {
        let out = quick_output();
        let sweep = horizon_sweep(&out, &[1, 6, 30]);
        assert_eq!(sweep.len(), 3);
        // On a long-range-dependent series the error at a 5-minute lead
        // exceeds the one-step error for the load-average method.
        assert!(
            sweep[2].mae[0] > sweep[0].mae[0],
            "1-step {} vs 30-step {}",
            sweep[0].mae[0],
            sweep[2].mae[0]
        );
        for p in &sweep {
            for v in p.mae {
                assert!(v.is_finite());
            }
        }
    }

    #[test]
    fn horizon_one_matches_one_step_eval() {
        let out = quick_output();
        let sweep = horizon_sweep(&out, &[1]);
        let mut nws = NwsForecaster::nws_default();
        let direct = evaluate_one_step(&mut nws, out.series.load.values())
            .expect("long series")
            .mae;
        assert!(
            (sweep[0].mae[0] - direct).abs() < 1e-9,
            "sweep {} vs direct {direct}",
            sweep[0].mae[0]
        );
    }

    #[test]
    fn robustness_reports_all_hosts_and_small_spread() {
        let cfg = ExperimentConfig::quick();
        let rows = seed_robustness(&cfg, &[1, 2, 3]);
        assert_eq!(rows.len(), 6);
        for r in &rows {
            for (mean, std) in r.cells {
                assert!((0.0..=1.0).contains(&mean), "{}: mean {mean}", r.host);
                assert!((0.0..0.2).contains(&std), "{}: std {std}", r.host);
            }
        }
        // The pathologies persist across seeds in expectation.
        let con = rows.iter().find(|r| r.host == "conundrum").expect("row");
        assert!(con.cells[0].0 > con.cells[2].0, "conundrum shape unstable");
    }

    #[test]
    #[should_panic(expected = "horizon")]
    fn zero_horizon_panics() {
        let out = quick_output();
        horizon_sweep(&out, &[0]);
    }
}
