//! Host-load statistical properties, after Dinda & O'Halloran.
//!
//! The paper's Section 3.1 leans on "The statistical properties of host
//! load" (its reference \[10\]) and reports that its own observations
//! "coincide with those made recently by Dinda and O'Halloran with respect
//! to observed autocorrelation structure". This experiment reproduces the
//! flavour of that study's summary tables over the simulated hosts: for
//! each host's raw 1-minute load-average trace (not the availability
//! transform), the distributional summary, key autocorrelations, and the
//! three Hurst estimators.

use crate::experiments::dataset::ExperimentConfig;
use crate::monitor::{Monitor, MonitorConfig};
use nws_runtime::parallel_map;
use nws_sim::HostProfile;
use nws_stats::{aggregated_variance_hurst, clamped_autocorrelation, hurst_rs, periodogram_hurst};
use nws_timeseries::{summarize, Series};

/// The Dinda–O'Halloran-style summary of one host's load trace.
#[derive(Debug, Clone)]
pub struct LoadStatsRow {
    /// Host name.
    pub host: String,
    /// Trace length in samples.
    pub n: usize,
    /// Mean 1-minute load average.
    pub mean: f64,
    /// Standard deviation.
    pub std_dev: f64,
    /// Maximum observed load.
    pub max: f64,
    /// Median load.
    pub median: f64,
    /// Autocorrelation at lags of 10 s, 1 min, 5 min, 1 h.
    pub acf: [f64; 4],
    /// Hurst estimates: `(R/S, aggregated variance, periodogram)`.
    pub hurst: (f64, f64, f64),
}

/// Collects load statistics over every UCSD host.
///
/// Uses the raw load series recovered from the availability measurements
/// (`load = 1/avail − 1`), which is exact because Eq. 1 is invertible.
pub fn load_statistics(cfg: &ExperimentConfig) -> Vec<LoadStatsRow> {
    let monitor = Monitor::new(MonitorConfig {
        duration: cfg.duration,
        warmup: cfg.warmup,
        test_period: None,
        ..MonitorConfig::default()
    });
    // Per-host monitoring plus the three Hurst estimators is embarrassingly
    // parallel; host order is preserved by parallel_map.
    parallel_map(HostProfile::all().to_vec(), |p| {
        let mut host = p.build(cfg.seed ^ 0x10AD);
        let out = monitor.run(&mut host);
        let load_series: Series = out
            .series
            .load
            .map_values(|avail| (1.0 / avail.max(1e-6) - 1.0).max(0.0));
        let values = load_series.values();
        let summary = summarize(values).expect("non-empty trace");
        let rho = clamped_autocorrelation(values, 360).unwrap_or_default();
        let at = |lag: usize| rho.get(lag).copied().unwrap_or(f64::NAN);
        LoadStatsRow {
            host: out.host,
            n: values.len(),
            mean: summary.mean,
            std_dev: summary.std_dev,
            max: summary.max,
            median: summary.median,
            acf: [at(1), at(6), at(30), at(360)],
            hurst: (
                hurst_rs(values, 10).map(|e| e.h).unwrap_or(f64::NAN),
                aggregated_variance_hurst(values)
                    .map(|e| e.h)
                    .unwrap_or(f64::NAN),
                periodogram_hurst(values).map(|e| e.h).unwrap_or(f64::NAN),
            ),
        }
    })
}

/// Sanity helper: Eq. 1 really is invertible on its range.
pub fn load_from_availability(avail: f64) -> f64 {
    (1.0 / avail.max(1e-6) - 1.0).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nws_sensors::availability_from_load;

    #[test]
    fn eq1_round_trips() {
        for load in [0.0, 0.3, 1.0, 4.0, 17.5] {
            let avail = availability_from_load(load);
            let back = load_from_availability(avail);
            assert!((back - load).abs() < 1e-9, "load {load} -> {back}");
        }
    }

    #[test]
    fn statistics_cover_all_hosts_with_sane_values() {
        let rows = load_statistics(&ExperimentConfig::quick());
        assert_eq!(rows.len(), 6);
        for r in &rows {
            assert!(r.n >= 300, "{}: n = {}", r.host, r.n);
            assert!(
                r.mean >= 0.0 && r.mean < 20.0,
                "{}: mean {}",
                r.host,
                r.mean
            );
            assert!(r.max >= r.mean);
            assert!(r.std_dev >= 0.0);
            // Strong short-lag correlation on every host (the 1-minute
            // smoothing guarantees it).
            assert!(r.acf[0] > 0.8, "{}: rho(1) = {}", r.host, r.acf[0]);
        }
    }

    #[test]
    fn busy_hosts_carry_more_load_than_light_ones() {
        let rows = load_statistics(&ExperimentConfig::quick());
        let get = |name: &str| {
            rows.iter()
                .find(|r| r.host == name)
                .expect("host present")
                .mean
        };
        assert!(get("thing2") > get("gremlin"));
        // kongo's resident job pins its load near (or above) 1.
        assert!(get("kongo") > 0.8, "kongo mean = {}", get("kongo"));
    }
}
