//! Dataset collection: the monitoring runs all tables/figures share.
//!
//! Every host's trace is a pure function of its own derived seed, so the
//! collectors below fan out over hosts with [`nws_runtime::parallel_map`]:
//! the outputs are bit-identical to a sequential run at any thread count.

use crate::monitor::{Monitor, MonitorConfig, MonitorOutput};
use nws_runtime::parallel_map;
use nws_sim::{HostProfile, Seconds};
use nws_timeseries::Series;

/// Global experiment parameters.
///
/// The defaults reproduce the paper's protocol (24-hour traces, a one-week
/// trace for the Hurst analysis). [`ExperimentConfig::quick`] shrinks
/// everything for fast tests — the *shapes* still hold at that scale, the
/// statistics are just noisier.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentConfig {
    /// Base seed; per-host seeds derive from it.
    pub seed: u64,
    /// Monitored span for the 24-hour experiments (Tables 1–6).
    pub duration: Seconds,
    /// Monitored span for the self-similarity analysis (Figure 3, Table 4
    /// column 2) — the paper used one week.
    pub hurst_duration: Seconds,
    /// Cadence of the 10-second test process (Tables 1–3).
    pub short_test_period: Seconds,
    /// Warm-up before recording.
    pub warmup: Seconds,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        Self {
            seed: 1998,
            duration: 24.0 * 3600.0,
            hurst_duration: 7.0 * 24.0 * 3600.0,
            short_test_period: 600.0,
            warmup: 1800.0,
        }
    }
}

impl ExperimentConfig {
    /// A reduced configuration for unit/integration tests: one simulated
    /// hour of monitoring and a 6-hour Hurst trace.
    pub fn quick() -> Self {
        Self {
            duration: 3600.0,
            hurst_duration: 6.0 * 3600.0,
            short_test_period: 300.0,
            warmup: 600.0,
            ..Self::default()
        }
    }

    fn short_monitor(&self) -> MonitorConfig {
        MonitorConfig {
            duration: self.duration,
            warmup: self.warmup,
            test_period: Some(self.short_test_period),
            ..MonitorConfig::default()
        }
    }

    fn medium_monitor(&self) -> MonitorConfig {
        MonitorConfig {
            duration: self.duration,
            warmup: self.warmup,
            test_period: Some(3600.0_f64.min(self.duration / 2.0)),
            test_duration: nws_sensors::TEST_DURATION_MEDIUM.min(self.duration / 12.0),
            ..MonitorConfig::default()
        }
    }

    fn per_host_seed(&self, name: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h ^ self.seed
    }
}

/// Runs the short-test (10 s) monitor over all six hosts — the dataset
/// behind Tables 1–5 and Figures 1–2.
pub fn short_dataset(cfg: &ExperimentConfig) -> Vec<MonitorOutput> {
    let monitor = Monitor::new(cfg.short_monitor());
    parallel_map(HostProfile::all().to_vec(), |p| {
        let mut host = p.build(cfg.per_host_seed(p.name()));
        monitor.run(&mut host)
    })
}

/// Runs the medium-term monitor (5-minute test process hourly) over all six
/// hosts — the dataset behind Table 6 and Figure 4.
pub fn medium_dataset(cfg: &ExperimentConfig) -> Vec<MonitorOutput> {
    let monitor = Monitor::new(cfg.medium_monitor());
    parallel_map(HostProfile::all().to_vec(), |p| {
        // Distinct sub-seed so the medium traces are not the identical
        // realization as the short ones (a different day of monitoring).
        let mut host = p.build(cfg.per_host_seed(p.name()).wrapping_add(0x5EED));
        monitor.run(&mut host)
    })
}

/// Collects week-long load-average availability series for every host, with
/// the test process disabled (the paper's pox plots come from plain
/// measurement traces).
pub fn weekly_load_series(cfg: &ExperimentConfig) -> Vec<Series> {
    let monitor = Monitor::new(MonitorConfig {
        duration: cfg.hurst_duration,
        warmup: cfg.warmup,
        test_period: None,
        ..MonitorConfig::default()
    });
    parallel_map(HostProfile::all().to_vec(), |p| {
        let mut host = p.build(cfg.per_host_seed(p.name()).wrapping_add(0x7DA));
        monitor.run(&mut host).series.load
    })
}

/// All three datasets collected concurrently: the 18 monitoring runs
/// (6 hosts × {short, medium, weekly}) are independent, so they share one
/// work queue instead of running dataset-by-dataset.
///
/// The week-long Hurst traces dominate the wall clock, so they are queued
/// first; results are reassembled per dataset in host order, making the
/// output identical to calling the three collectors back to back.
pub fn all_datasets(
    cfg: &ExperimentConfig,
) -> (Vec<MonitorOutput>, Vec<MonitorOutput>, Vec<Series>) {
    enum Job {
        Short(HostProfile),
        Medium(HostProfile),
        Weekly(HostProfile),
    }
    enum Out {
        Monitor(Box<MonitorOutput>),
        Load(Series),
    }

    let short_monitor = Monitor::new(cfg.short_monitor());
    let medium_monitor = Monitor::new(cfg.medium_monitor());
    let weekly_monitor = Monitor::new(MonitorConfig {
        duration: cfg.hurst_duration,
        warmup: cfg.warmup,
        test_period: None,
        ..MonitorConfig::default()
    });

    let profiles = HostProfile::all();
    let mut jobs: Vec<Job> = Vec::with_capacity(3 * profiles.len());
    jobs.extend(profiles.iter().map(|p| Job::Weekly(*p)));
    jobs.extend(profiles.iter().map(|p| Job::Short(*p)));
    jobs.extend(profiles.iter().map(|p| Job::Medium(*p)));

    let outs = parallel_map(jobs, |job| match job {
        Job::Short(p) => {
            let mut host = p.build(cfg.per_host_seed(p.name()));
            Out::Monitor(Box::new(short_monitor.run(&mut host)))
        }
        Job::Medium(p) => {
            let mut host = p.build(cfg.per_host_seed(p.name()).wrapping_add(0x5EED));
            Out::Monitor(Box::new(medium_monitor.run(&mut host)))
        }
        Job::Weekly(p) => {
            let mut host = p.build(cfg.per_host_seed(p.name()).wrapping_add(0x7DA));
            Out::Load(weekly_monitor.run(&mut host).series.load)
        }
    });

    let n = profiles.len();
    let mut weekly = Vec::with_capacity(n);
    let mut short = Vec::with_capacity(n);
    let mut medium = Vec::with_capacity(n);
    for out in outs {
        match out {
            Out::Load(s) => weekly.push(s),
            Out::Monitor(m) if short.len() < n => short.push(*m),
            Out::Monitor(m) => medium.push(*m),
        }
    }
    (short, medium, weekly)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_dataset_covers_all_hosts() {
        let cfg = ExperimentConfig::quick();
        let data = short_dataset(&cfg);
        assert_eq!(data.len(), 6);
        for out in &data {
            assert_eq!(out.series.load.len(), 360); // 3600 s / 10 s
            assert!(!out.tests.is_empty());
        }
        let names: Vec<&str> = data.iter().map(|o| o.host.as_str()).collect();
        assert_eq!(names, nws_sim::UCSD_HOST_NAMES.to_vec());
    }

    #[test]
    fn datasets_are_deterministic() {
        let cfg = ExperimentConfig::quick();
        let a = short_dataset(&cfg);
        let b = short_dataset(&cfg);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.series.load.values(), y.series.load.values());
        }
    }

    #[test]
    fn medium_dataset_uses_long_tests() {
        let cfg = ExperimentConfig::quick();
        let data = medium_dataset(&cfg);
        for out in &data {
            for t in &out.tests {
                assert!(t.duration >= 100.0, "medium test too short");
            }
        }
    }

    #[test]
    fn all_datasets_matches_individual_collectors() {
        let cfg = ExperimentConfig::quick();
        let (short, medium, weekly) = all_datasets(&cfg);
        let short_ref = short_dataset(&cfg);
        let medium_ref = medium_dataset(&cfg);
        let weekly_ref = weekly_load_series(&cfg);
        assert_eq!(short.len(), short_ref.len());
        for (a, b) in short.iter().zip(&short_ref) {
            assert_eq!(a.host, b.host);
            assert_eq!(a.series.load.values(), b.series.load.values());
        }
        for (a, b) in medium.iter().zip(&medium_ref) {
            assert_eq!(a.host, b.host);
            assert_eq!(a.series.load.values(), b.series.load.values());
        }
        for (a, b) in weekly.iter().zip(&weekly_ref) {
            assert_eq!(a.values(), b.values());
        }
    }

    #[test]
    fn weekly_series_have_expected_length() {
        let cfg = ExperimentConfig::quick();
        let series = weekly_load_series(&cfg);
        assert_eq!(series.len(), 6);
        for s in &series {
            assert_eq!(s.len(), (cfg.hurst_duration / 10.0) as usize);
        }
    }
}
