//! `nws-core` — the monitoring pipeline and paper experiment drivers.
//!
//! This crate glues the substrates together into the system the paper
//! describes:
//!
//! - [`monitor`] runs the NWS CPU monitor against a simulated host: the
//!   three sensors on their 10-second cadence, the hybrid's 1.5 s probe
//!   once a minute, and the ground-truth test process on its own schedule —
//!   producing the measurement series and paired test observations that
//!   every table in the paper is computed from.
//! - [`experiments`] regenerates **every table and figure**: Tables 1–6
//!   and Figures 1–4, plus the ablations described in `DESIGN.md`.
//! - [`report`] renders results as aligned text tables and CSV.
//! - [`plot`] renders quick ASCII time-series/scatter plots for the
//!   figures.
//! - [`paper`] records the paper's published numbers so reports can print
//!   paper-vs-measured side by side.

pub mod experiments;
pub mod monitor;
pub mod paper;
pub mod plot;
pub mod report;

pub use experiments::ExperimentConfig;
pub use monitor::{MethodSeries, Monitor, MonitorConfig, MonitorOutput, TestObservation};
