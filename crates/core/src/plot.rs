//! Minimal ASCII plotting for the repro harness.
//!
//! The figures are also written as CSV for external plotting; these
//! renderers give an immediate visual check in the terminal — enough to see
//! Figure 1's load structure, Figure 2's slow ACF decay, and Figure 3's
//! pox-plot slope.

use nws_timeseries::Series;

/// Renders a time series as an ASCII line chart of `width × height`
/// characters (plus axes). Values are min–max scaled.
pub fn ascii_series(series: &Series, width: usize, height: usize) -> String {
    assert!(width >= 2 && height >= 2, "plot area too small");
    if series.is_empty() {
        return format!("{} (empty)\n", series.name());
    }
    let values = series.values();
    let (min, max) = values
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
            (lo.min(v), hi.max(v))
        });
    let span = if (max - min).abs() < 1e-12 {
        1.0
    } else {
        max - min
    };
    // Bucket the series into `width` columns, averaging within each.
    let mut cols = vec![f64::NAN; width];
    let per = (values.len() as f64 / width as f64).max(1.0);
    for (c, col) in cols.iter_mut().enumerate() {
        let lo = (c as f64 * per) as usize;
        let hi = (((c + 1) as f64 * per) as usize)
            .min(values.len())
            .max(lo + 1);
        if lo < values.len() {
            let slice = &values[lo..hi.min(values.len())];
            *col = slice.iter().sum::<f64>() / slice.len() as f64;
        }
    }
    let mut grid = vec![vec![b' '; width]; height];
    for (c, &v) in cols.iter().enumerate() {
        if v.is_nan() {
            continue;
        }
        let r = ((v - min) / span * (height - 1) as f64).round() as usize;
        let row = height - 1 - r.min(height - 1);
        grid[row][c] = b'*';
    }
    let mut out = String::new();
    out.push_str(&format!("{}  [{:.3} .. {:.3}]\n", series.name(), min, max));
    for row in grid {
        out.push('|');
        out.push_str(std::str::from_utf8(&row).expect("ascii"));
        out.push('\n');
    }
    out.push('+');
    out.push_str(&"-".repeat(width));
    out.push('\n');
    out
}

/// Renders an `(x, y)` scatter as ASCII, with an optional fitted line drawn
/// as `.` where no point is present (used for the pox plots of Figure 3).
pub fn ascii_scatter(
    title: &str,
    points: &[(f64, f64)],
    fit: Option<(f64, f64)>,
    width: usize,
    height: usize,
) -> String {
    assert!(width >= 2 && height >= 2, "plot area too small");
    if points.is_empty() {
        return format!("{title} (no points)\n");
    }
    let (mut min_x, mut max_x) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut min_y, mut max_y) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in points {
        min_x = min_x.min(x);
        max_x = max_x.max(x);
        min_y = min_y.min(y);
        max_y = max_y.max(y);
    }
    let sx = if (max_x - min_x).abs() < 1e-12 {
        1.0
    } else {
        max_x - min_x
    };
    let sy = if (max_y - min_y).abs() < 1e-12 {
        1.0
    } else {
        max_y - min_y
    };
    let mut grid = vec![vec![b' '; width]; height];
    if let Some((slope, intercept)) = fit {
        for (c, x) in (0..width).map(|c| (c, min_x + sx * c as f64 / (width - 1) as f64)) {
            let y = slope * x + intercept;
            if y >= min_y && y <= max_y {
                let r = ((y - min_y) / sy * (height - 1) as f64).round() as usize;
                grid[height - 1 - r.min(height - 1)][c] = b'.';
            }
        }
    }
    for &(x, y) in points {
        let c = ((x - min_x) / sx * (width - 1) as f64).round() as usize;
        let r = ((y - min_y) / sy * (height - 1) as f64).round() as usize;
        grid[height - 1 - r.min(height - 1)][c.min(width - 1)] = b'*';
    }
    let mut out = String::new();
    out.push_str(&format!(
        "{title}  x:[{min_x:.2}..{max_x:.2}] y:[{min_y:.2}..{max_y:.2}]\n"
    ));
    for row in grid {
        out.push('|');
        out.push_str(std::str::from_utf8(&row).expect("ascii"));
        out.push('\n');
    }
    out.push('+');
    out.push_str(&"-".repeat(width));
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_plot_has_expected_dimensions() {
        let s = Series::from_values("ramp", 0.0, 1.0, (0..100).map(|i| i as f64)).unwrap();
        let plot = ascii_series(&s, 40, 10);
        let lines: Vec<&str> = plot.lines().collect();
        assert_eq!(lines.len(), 12); // title + 10 rows + axis
        assert!(lines[0].contains("ramp"));
        // A ramp touches the bottom-left and top-right.
        assert!(lines[1].ends_with('*') || lines[1].contains('*'));
        assert!(lines[10].contains('*'));
    }

    #[test]
    fn empty_series_handled() {
        let s = Series::new("empty");
        assert!(ascii_series(&s, 10, 5).contains("empty"));
    }

    #[test]
    fn constant_series_is_one_row() {
        let s = Series::from_values("flat", 0.0, 1.0, [2.0; 50]).unwrap();
        let plot = ascii_series(&s, 20, 6);
        let star_rows = plot.lines().filter(|l| l.contains('*')).count();
        assert_eq!(star_rows, 1);
    }

    #[test]
    fn scatter_draws_points_and_fit() {
        let pts: Vec<(f64, f64)> = (0..20).map(|i| (i as f64, 2.0 * i as f64)).collect();
        let plot = ascii_scatter("fit", &pts, Some((2.0, 0.0)), 30, 10);
        assert!(plot.contains('*'));
        assert!(plot.starts_with("fit"));
    }

    #[test]
    fn scatter_empty_handled() {
        assert!(ascii_scatter("none", &[], None, 10, 5).contains("no points"));
    }
}
