//! Calibration harness: the table the host profiles were tuned against.
//!
//! ```sh
//! cargo run --release -p nws-core --example tune [full]
//! ```
//!
//! Prints, per host, the Table 1 measurement errors and the Table 3
//! one-step prediction errors side by side with the mean availability the
//! sensors report and the mean availability the test process actually
//! observed. This is the loop `DESIGN.md` §6 describes: every workload
//! parameter in `nws_sim::profiles` was chosen by watching this table
//! converge toward the paper's. `full` runs the paper-scale 24-hour
//! protocol; the default is a faster 4-hour pass.
use nws_core::experiments::dataset::{short_dataset, ExperimentConfig};
use nws_core::experiments::tables::{table1_from, table3_from};

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_default();
    let cfg = if arg == "full" {
        ExperimentConfig::default()
    } else {
        ExperimentConfig {
            duration: 4.0 * 3600.0,
            hurst_duration: 24.0 * 3600.0,
            short_test_period: 600.0,
            warmup: 1800.0,
            ..ExperimentConfig::default()
        }
    };
    let data = short_dataset(&cfg);
    let t1 = table1_from(&data);
    let t3 = table3_from(&data);
    println!("host        t1.load t1.vm  t1.hyb |  t3.load t3.vm  t3.hyb | means");
    for (o, (r1, r3)) in data.iter().zip(t1.rows.iter().zip(&t3.rows)) {
        let mean_avail: f64 =
            o.series.load.values().iter().sum::<f64>() / o.series.load.len() as f64;
        let mean_test: f64 = o.tests.iter().map(|t| t.value).sum::<f64>() / o.tests.len() as f64;
        println!(
            "{:<11} {:>6.3} {:>6.3} {:>6.3} | {:>7.3} {:>6.3} {:>6.3} | avail={:.2} test={:.2}",
            r1.host,
            r1.load,
            r1.vmstat,
            r1.hybrid,
            r3.load,
            r3.vmstat,
            r3.hybrid,
            mean_avail,
            mean_test
        );
    }
}
