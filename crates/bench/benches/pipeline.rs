//! End-to-end pipeline throughput: the full NWS monitor and the grid
//! weather service, in simulated-hours per wall-second terms.

use criterion::{criterion_group, criterion_main, Criterion};
use nws_core::monitor::{Monitor, MonitorConfig};
use nws_grid::GridMonitor;
use nws_sim::HostProfile;
use std::hint::black_box;

fn bench_monitor_hour(c: &mut Criterion) {
    c.bench_function("monitor_one_hour_thing2", |b| {
        let monitor = Monitor::new(MonitorConfig {
            duration: 3600.0,
            warmup: 300.0,
            test_period: Some(600.0),
            ..MonitorConfig::default()
        });
        b.iter(|| {
            let mut host = HostProfile::Thing2.build(3);
            black_box(monitor.run(&mut host))
        })
    });
}

fn bench_grid_step(c: &mut Criterion) {
    c.bench_function("grid_step_six_hosts", |b| {
        let mut grid = GridMonitor::ucsd(5);
        grid.run_steps(60); // warm
        b.iter(|| {
            grid.step();
            black_box(grid.slots())
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_monitor_hour, bench_grid_step, net_benches::bench_link
}
criterion_main!(benches);

mod net_benches {
    use super::*;
    use nws_net::{BandwidthSensor, Link, LinkConfig};

    pub fn bench_link(c: &mut Criterion) {
        c.bench_function("link_advance_one_hour", |b| {
            b.iter(|| {
                let mut link = Link::new("wan", LinkConfig::wan_10mbit(), 7);
                link.advance(3600.0);
                black_box(link.delivered_bytes())
            })
        });
        c.bench_function("bandwidth_probe_64k", |b| {
            let mut link = Link::new("wan", LinkConfig::wan_10mbit(), 9);
            link.advance(300.0);
            let mut sensor = BandwidthSensor::nws_default();
            b.iter(|| black_box(sensor.measure(&mut link)))
        });
    }
}
