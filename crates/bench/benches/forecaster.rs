//! Forecaster throughput benchmarks.
//!
//! The NWS forecaster must be "relatively cheap to compute" — it runs once
//! per measurement per monitored resource across a whole grid. These
//! benches report per-update cost for the full panel and for individual
//! predictor families.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use nws_forecast::{
    AdaptiveWindowMean, ExpSmoothing, Forecaster, NwsForecaster, SlidingMean, SlidingMedian,
};
use nws_stats::{DaviesHarte, Rng};
use std::hint::black_box;

fn availability_series(n: usize) -> Vec<f64> {
    // Realistic input: fGn with H = 0.7 mapped into [0, 1].
    let noise = DaviesHarte::new(0.7)
        .unwrap()
        .sample(n, &mut Rng::new(7))
        .unwrap();
    noise
        .into_iter()
        .map(|z| (0.6 + 0.15 * z).clamp(0.0, 1.0))
        .collect()
}

fn bench_full_panel(c: &mut Criterion) {
    let series = availability_series(8640); // one day of 10s measurements
    c.bench_function("nws_panel_update_8640", |b| {
        b.iter_batched(
            NwsForecaster::nws_default,
            |mut nws| {
                for &v in &series {
                    black_box(nws.update(v));
                }
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_single_predictors(c: &mut Criterion) {
    let series = availability_series(8640);
    let mut group = c.benchmark_group("single_predictor_8640");
    group.bench_function("sliding_mean_50", |b| {
        b.iter_batched(
            || SlidingMean::new(50),
            |mut f| {
                for &v in &series {
                    f.observe(v);
                    black_box(f.predict());
                }
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("sliding_median_51", |b| {
        b.iter_batched(
            || SlidingMedian::new(51),
            |mut f| {
                for &v in &series {
                    f.observe(v);
                    black_box(f.predict());
                }
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("exp_smoothing", |b| {
        b.iter_batched(
            || ExpSmoothing::new(0.3),
            |mut f| {
                for &v in &series {
                    f.observe(v);
                    black_box(f.predict());
                }
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("adaptive_window", |b| {
        b.iter_batched(
            || AdaptiveWindowMean::new(3, 100),
            |mut f| {
                for &v in &series {
                    f.observe(v);
                    black_box(f.predict());
                }
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_full_panel, bench_single_predictors
}
criterion_main!(benches);
