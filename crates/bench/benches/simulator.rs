//! Host-simulator throughput: simulated seconds per wall second.

use criterion::{criterion_group, criterion_main, Criterion};
use nws_sim::HostProfile;
use std::hint::black_box;

fn bench_host_hour(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate_one_hour");
    for profile in [
        HostProfile::Thing2,
        HostProfile::Kongo,
        HostProfile::Gremlin,
    ] {
        group.bench_function(profile.name(), |b| {
            b.iter(|| {
                let mut host = profile.build(11);
                host.advance(3600.0);
                black_box(host.accounting())
            })
        });
    }
    group.finish();
}

fn bench_probe(c: &mut Criterion) {
    c.bench_function("occupancy_probe_on_loaded_host", |b| {
        let mut host = HostProfile::Thing2.build(13);
        host.advance(1800.0);
        b.iter(|| black_box(host.run_cpu_limited_probe("probe", 1.5, 8.0)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_host_hour, bench_probe
}
criterion_main!(benches);
