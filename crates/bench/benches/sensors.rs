//! Sensor overhead: the paper argues the passive sensors are "relatively
//! non-intrusive" and costs the probe at 2.5 % CPU. These benches report
//! the *host-side* cost of taking measurements against the simulator.

use criterion::{criterion_group, criterion_main, Criterion};
use nws_sensors::{HybridSensor, LoadAvgSensor, VmstatSensor};
use nws_sim::HostProfile;
use std::hint::black_box;

fn bench_passive_sensors(c: &mut Criterion) {
    let mut host = HostProfile::Thing1.build(17);
    host.advance(1800.0);
    let mut group = c.benchmark_group("passive_measurement");
    group.bench_function("load_average", |b| {
        let mut s = LoadAvgSensor::new();
        b.iter(|| black_box(s.measure(&host)))
    });
    group.bench_function("vmstat", |b| {
        let mut s = VmstatSensor::new();
        b.iter(|| black_box(s.measure(&host)))
    });
    group.bench_function("hybrid_passive", |b| {
        let mut s = HybridSensor::default();
        b.iter(|| black_box(s.measure(&host)))
    });
    group.finish();
}

fn bench_probe_cycle(c: &mut Criterion) {
    c.bench_function("hybrid_probe_cycle", |b| {
        let mut host = HostProfile::Thing1.build(19);
        host.advance(1800.0);
        let mut s = HybridSensor::default();
        b.iter(|| black_box(s.measure_with_probe(&mut host)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_passive_sensors, bench_probe_cycle
}
criterion_main!(benches);
