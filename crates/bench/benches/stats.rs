//! Statistics substrate benchmarks.
//!
//! Includes the Hosking vs Davies–Harte fGn ablation called out in
//! `DESIGN.md`: identical distribution, O(n²) vs O(n log n) cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nws_stats::{autocorrelation, hurst_rs, periodogram, DaviesHarte, Hosking, Rng};
use std::hint::black_box;

fn bench_fgn_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("fgn_generation");
    for &n in &[1024usize, 4096] {
        group.bench_with_input(BenchmarkId::new("hosking", n), &n, |b, &n| {
            let gen = Hosking::new(0.7).unwrap();
            b.iter(|| {
                let mut rng = Rng::new(3);
                black_box(gen.sample(n, &mut rng).unwrap())
            })
        });
        group.bench_with_input(BenchmarkId::new("davies_harte", n), &n, |b, &n| {
            let gen = DaviesHarte::new(0.7).unwrap();
            b.iter(|| {
                let mut rng = Rng::new(3);
                black_box(gen.sample(n, &mut rng).unwrap())
            })
        });
    }
    // Davies–Harte scales to week-long traces; Hosking would take minutes.
    group.bench_function("davies_harte/65536", |b| {
        let gen = DaviesHarte::new(0.7).unwrap();
        b.iter(|| {
            let mut rng = Rng::new(3);
            black_box(gen.sample(65536, &mut rng).unwrap())
        })
    });
    group.finish();
}

fn bench_analysis(c: &mut Criterion) {
    let series = DaviesHarte::new(0.7)
        .unwrap()
        .sample(60_480, &mut Rng::new(5)) // one week of 10 s samples
        .unwrap();
    let mut group = c.benchmark_group("series_analysis_week");
    group.sample_size(10);
    group.bench_function("acf_360_lags", |b| {
        b.iter(|| black_box(autocorrelation(&series, 360)))
    });
    group.bench_function("hurst_rs", |b| b.iter(|| black_box(hurst_rs(&series, 10))));
    group.bench_function("periodogram", |b| {
        b.iter(|| black_box(periodogram(&series)))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_fgn_generators, bench_analysis
}
criterion_main!(benches);
