//! Steady-state allocation regression tests for the engine hot loop.
//!
//! The engine's pooled event arenas and the runtime's resident worker
//! pool promise that once buffers reach capacity, a round allocates
//! nothing — at any thread count and any batch size. These tests pin
//! that promise with the counting allocator, and pin bit-identity of
//! the committed stream across the whole thread × batch matrix so the
//! zero-alloc paths cannot drift from the canonical sequential path.
//!
//! Everything runs inside one `#[test]` because the thread setting is
//! process-global and the allocator counters are shared; the default
//! parallel test runner would otherwise interleave configurations.

use nws_bench::alloc_counter::{self, CountingAllocator};
use nws_runtime::engine::{Cadence, Engine, EngineConfig, Source, Stage};
use nws_runtime::StepClock;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

/// A seeded LCG shard, cheap enough that allocator activity — not event
/// generation — dominates anything the engine does per round.
struct Lcg {
    seed: u64,
    state: u64,
}

impl Source for Lcg {
    type Event = u64;
    fn produce(&mut self, slot: u64) -> u64 {
        self.state = self
            .state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(self.seed ^ slot);
        self.state
    }
}

/// Folds every committed event into an order-sensitive hash without
/// storing anything, so commits themselves cannot allocate.
struct Fold {
    hash: u64,
    events: u64,
}

impl Stage<Lcg> for Fold {
    fn commit(&mut self, shard: usize, _src: &mut Lcg, slot: u64, event: &u64) {
        self.hash = self
            .hash
            .wrapping_mul(0x0000_0100_0000_01B3)
            .wrapping_add(event ^ slot ^ shard as u64);
        self.events += 1;
    }
}

const SHARDS: u64 = 8;
const WARMUP_SLOTS: u64 = 128;
const MEASURE_SLOTS: u64 = 256;

/// Runs one (threads, batch) cell: warm up, then count allocations over
/// a measured window. Returns the stream hash and the alloc count.
fn run_cell(threads: usize, batch_slots: usize) -> (u64, u64) {
    nws_runtime::set_threads(Some(threads));
    let sources: Vec<Lcg> = (0..SHARDS).map(|i| Lcg { seed: i, state: i }).collect();
    let config = EngineConfig {
        cadence: Cadence::PAPER,
        batch_slots,
    };
    let mut engine = Engine::with_clock(sources, config, Box::new(StepClock::new(10.0)));
    let mut stage = Fold { hash: 0, events: 0 };
    engine.run(WARMUP_SLOTS, &mut stage);
    let ((), steady) = alloc_counter::measure(|| {
        engine.run(MEASURE_SLOTS, &mut stage);
    });
    nws_runtime::set_threads(None);
    assert_eq!(
        stage.events,
        (WARMUP_SLOTS + MEASURE_SLOTS) * SHARDS,
        "every slot × shard committed exactly once"
    );
    (stage.hash, steady.calls)
}

#[test]
fn steady_state_rounds_allocate_nothing_and_agree_across_configs() {
    let mut reference: Option<u64> = None;
    for threads in [1usize, 4] {
        for batch_slots in [1usize, 64] {
            let (hash, steady_allocs) = run_cell(threads, batch_slots);
            assert_eq!(
                steady_allocs, 0,
                "threads={threads} batch={batch_slots}: steady-state rounds must not allocate"
            );
            match reference {
                None => reference = Some(hash),
                Some(expected) => assert_eq!(
                    hash, expected,
                    "threads={threads} batch={batch_slots}: committed stream diverged"
                ),
            }
        }
    }
}
