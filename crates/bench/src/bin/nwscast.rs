//! `nwscast` — forecast any recorded series from the command line.
//!
//! ```text
//! nwscast <series.csv> [--trace] [--coverage 0.9] [--analyze] [--top N]
//! ```
//!
//! Reads a `time,value` CSV (as written by the library's CSV tools, the
//! repro harness, or any external monitor), replays it through the full NWS
//! forecaster panel, and reports:
//!
//! - the dynamic selection's one-step MAE/RMSE and the per-method
//!   leaderboard,
//! - a forecast for the next value with a calibrated prediction interval,
//! - (with `--analyze`) the series' autocorrelation summary and Hurst
//!   estimates.
//!
//! `--trace` interprets the file as a *run-queue* trace (`time,level`) and
//! converts it to availability via the paper's Eq. 1 before forecasting.

use nws_forecast::{IntervalTracker, NwsForecaster};
use nws_sensors::availability_from_load;
use nws_stats::{aggregated_variance_hurst, autocorrelation, hurst_rs};
use nws_timeseries::csv::read_series;
use nws_timeseries::Series;

struct Args {
    path: String,
    trace: bool,
    coverage: f64,
    analyze: bool,
    top: usize,
}

fn parse_args() -> Args {
    let mut path = None;
    let mut trace = false;
    let mut coverage = 0.9;
    let mut analyze = false;
    let mut top = 5;
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--trace" => trace = true,
            "--analyze" => analyze = true,
            "--coverage" => {
                coverage = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--coverage needs a fraction"));
            }
            "--top" => {
                top = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--top needs a count"));
            }
            "--help" | "-h" => usage(""),
            other if other.starts_with('-') => usage(&format!("unknown flag {other}")),
            other => path = Some(other.to_string()),
        }
    }
    Args {
        path: path.unwrap_or_else(|| usage("missing input file")),
        trace,
        coverage,
        analyze,
        top,
    }
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!("usage: nwscast <series.csv> [--trace] [--coverage 0.9] [--analyze] [--top N]");
    std::process::exit(if msg.is_empty() { 0 } else { 2 });
}

fn main() {
    let args = parse_args();
    let series: Series = match read_series(&args.path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {}: {e}", args.path);
            std::process::exit(1);
        }
    };
    if series.len() < 3 {
        eprintln!(
            "{}: need at least 3 points, found {}",
            args.path,
            series.len()
        );
        std::process::exit(1);
    }
    let values: Vec<f64> = if args.trace {
        series
            .values()
            .iter()
            .map(|&l| availability_from_load(l))
            .collect()
    } else {
        series.values().to_vec()
    };
    println!(
        "{}: {} points, dt = {:.1}s{}",
        series.name(),
        values.len(),
        series.mean_dt().unwrap_or(0.0),
        if args.trace {
            " (Eq. 1 applied to run-queue trace)"
        } else {
            ""
        }
    );

    // Replay through the panel, scoring forecasts and intervals.
    let mut nws = NwsForecaster::nws_default();
    let mut intervals = IntervalTracker::new(args.coverage).without_unit_clamp();
    let mut abs_sum = 0.0;
    let mut sq_sum = 0.0;
    let mut covered = 0usize;
    let mut interval_count = 0usize;
    let mut n = 0usize;
    for &v in &values {
        if let Some(f) = nws.forecast() {
            let e = f.value - v;
            abs_sum += e.abs();
            sq_sum += e * e;
            n += 1;
            if let Some(iv) = intervals.interval(f.value) {
                interval_count += 1;
                if (iv.lo..=iv.hi).contains(&v) {
                    covered += 1;
                }
            }
            intervals.record(f.value, v);
        }
        nws.update(v);
    }
    let nf = n as f64;
    println!(
        "\none-step forecasting: MAE {:.4}  RMSE {:.4}  ({n} scored forecasts)",
        abs_sum / nf,
        (sq_sum / nf).sqrt()
    );
    if interval_count > 0 {
        println!(
            "interval calibration: {:.1}% of actuals inside the {:.0}% interval",
            100.0 * covered as f64 / interval_count as f64,
            args.coverage * 100.0
        );
    }

    // Per-method leaderboard.
    let mut leaderboard = nws.error_summary();
    leaderboard.sort_by(|a, b| a.1.total_cmp(&b.1));
    println!("\nbest fixed predictors:");
    for (name, mae) in leaderboard.iter().take(args.top) {
        println!("  {:<20} MAE {:.4}", name, mae);
    }

    // The live forecast.
    if let Some(f) = nws.forecast() {
        print!("\nnext value: {:.4} (method: {})", f.value, f.method);
        if let Some(iv) = intervals.interval(f.value) {
            print!(
                "  {:.0}% interval [{:.4}, {:.4}]",
                iv.coverage * 100.0,
                iv.lo,
                iv.hi
            );
        }
        println!();
    }

    if args.analyze {
        println!("\nseries structure:");
        if let Some(rho) = autocorrelation(&values, 60.min(values.len() - 2)) {
            let l1 = rho.get(1).copied().unwrap_or(f64::NAN);
            let l10 = rho.get(10).copied().unwrap_or(f64::NAN);
            let l60 = rho.get(60).copied().unwrap_or(f64::NAN);
            println!("  autocorrelation: rho(1) = {l1:.2}, rho(10) = {l10:.2}, rho(60) = {l60:.2}");
        }
        match hurst_rs(&values, 10) {
            Some(est) => println!(
                "  Hurst (R/S): H = {:.2}  (r² = {:.3})",
                est.h, est.fit.r_squared
            ),
            None => println!("  Hurst (R/S): series too short"),
        }
        if let Some(est) = aggregated_variance_hurst(&values) {
            println!("  Hurst (agg. variance): H = {:.2}", est.h);
        }
    }
}
