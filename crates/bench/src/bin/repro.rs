//! `repro` — regenerates every table and figure of the paper.
//!
//! ```text
//! repro [--quick] [--smoke] [--seed N] [--threads N] <experiment>...
//! experiments: table1 table2 table3 table4 table5 table6
//!              fig1 fig2 fig3 fig4 ablation sweep robustness
//!              sched datasched net loadstats faults perf serve fleet
//!              durability load all
//! ```
//!
//! Tables are printed with the paper's published value in parentheses next
//! to each measured cell; every artifact is also written as CSV under
//! `results/` (override with `NWS_RESULTS_DIR`).
//!
//! Experiment drivers fan out over hosts/seeds/sweep points through
//! `nws-runtime`; `--threads N` (or the `NWS_THREADS` environment
//! variable) pins the worker count, and `--threads 1` forces fully
//! sequential execution. Results are bit-identical at any thread count.
//! Per-stage wall-clock timings are written to `BENCH_repro.json` after
//! every run; the `perf` experiment runs a representative timing suite
//! without printing the tables.

use nws_bench::alloc_counter::{self, AllocSnapshot, CountingAllocator};
use nws_bench::write_artifact;
use nws_core::experiments::{
    aggregation_sweep, all_datasets, bias_ablation, fig1_from, fig2_from, fig3_from, fig4_from,
    forecaster_ablation, horizon_sweep, load_statistics, medium_dataset, probe_duration_sweep,
    seed_robustness, short_dataset, sweep_dataset, table1_from, table2_from, table3_from,
    table4_from, table5_from, table6_from, weekly_load_series, ExperimentConfig,
};
use nws_core::monitor::MonitorOutput;
use nws_core::paper;
use nws_core::plot::{ascii_scatter, ascii_series};
use nws_core::report::{
    method_table_to_csv, pct, render_method_table, render_table4, table4_to_csv,
};
use nws_net::LinkMonitor;
use nws_sched::data_aware::{run_data_sched_experiment, DataSchedConfig};
use nws_sched::experiment::{run_scheduling_experiment, SchedConfig};
use nws_sched::workqueue::compare_static_vs_dynamic;
use nws_sim::HostProfile;
use nws_timeseries::csv::series_to_csv;
use std::collections::BTreeSet;
use std::fmt::Write as _;

// Counted pass-through to the system allocator, so the perf suite can
// report allocation counts next to wall-clock timings.
#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

struct Args {
    quick: bool,
    smoke: bool,
    seed: Option<u64>,
    threads: Option<usize>,
    /// Which socket transport the `load` experiment drives: "threaded",
    /// "reactor", or "all" (both, the default — and what CI diffs).
    transport: String,
    /// `fleet --quality`: run the forecast-quality sweep (per-predictor
    /// MAE/MSE error tables over three prediction scenarios) instead of
    /// the scaling sweep.
    quality: bool,
    experiments: BTreeSet<String>,
}

fn parse_args() -> Args {
    let mut quick = false;
    let mut smoke = false;
    let mut seed = None;
    let mut threads = None;
    let mut transport = String::from("all");
    let mut quality = false;
    let mut experiments = BTreeSet::new();
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--smoke" => {
                // CI-sized runs: quick datasets plus the smallest sweep
                // grids, meant for cross-thread-count diffing.
                smoke = true;
                quick = true;
            }
            "--seed" => {
                let v = iter.next().unwrap_or_else(|| usage("--seed needs a value"));
                seed = Some(v.parse().unwrap_or_else(|_| usage("bad seed")));
            }
            "--threads" => {
                let v = iter
                    .next()
                    .unwrap_or_else(|| usage("--threads needs a value"));
                let n: usize = v.parse().unwrap_or_else(|_| usage("bad thread count"));
                if n == 0 {
                    usage("thread count must be positive");
                }
                threads = Some(n);
            }
            "--transport" => {
                let v = iter
                    .next()
                    .unwrap_or_else(|| usage("--transport needs a value"));
                if !["threaded", "reactor", "all"].contains(&v.as_str()) {
                    usage("transport must be threaded, reactor, or all");
                }
                transport = v;
            }
            "--quality" => quality = true,
            "--help" | "-h" => usage(""),
            other if other.starts_with('-') => usage(&format!("unknown flag {other}")),
            other => {
                experiments.insert(other.to_string());
            }
        }
    }
    if experiments.is_empty() {
        experiments.insert("all".to_string());
    }
    const KNOWN: &[&str] = &[
        "table1",
        "table2",
        "table3",
        "table4",
        "table5",
        "table6",
        "fig1",
        "fig2",
        "fig3",
        "fig4",
        "ablation",
        "sweep",
        "robustness",
        "sched",
        "datasched",
        "net",
        "loadstats",
        "faults",
        "perf",
        "serve",
        "fleet",
        "durability",
        "load",
        "all",
    ];
    for exp in &experiments {
        if !KNOWN.contains(&exp.as_str()) {
            usage(&format!("unknown experiment {exp}"));
        }
    }
    Args {
        quick,
        smoke,
        seed,
        threads,
        transport,
        quality,
        experiments,
    }
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!(
        "usage: repro [--quick] [--smoke] [--seed N] [--threads N] \
         [--transport threaded|reactor|all] [--quality] <experiment>...\n\
         experiments: table1 table2 table3 table4 table5 table6\n\
         \x20            fig1 fig2 fig3 fig4 ablation sweep robustness\n\
         \x20            sched datasched net loadstats faults perf serve fleet\n\
         \x20            durability load all"
    );
    std::process::exit(if msg.is_empty() { 0 } else { 2 });
}

/// Runs `f`, recording its wall-clock time under `name` for
/// `BENCH_repro.json`.
fn timed<T>(stages: &mut Vec<(String, f64)>, name: &str, f: impl FnOnce() -> T) -> T {
    let t0 = std::time::Instant::now();
    let out = f();
    stages.push((name.to_string(), t0.elapsed().as_secs_f64() * 1e3));
    out
}

/// Writes the per-stage timing artifact (hand-rolled JSON; stage names are
/// plain identifiers, so no escaping is needed).
fn write_bench_artifact(stages: &[(String, f64)], quick: bool) {
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"threads\": {},", nws_runtime::threads());
    let _ = writeln!(json, "  \"hosts\": {},", HostProfile::all().len());
    let _ = writeln!(json, "  \"quick\": {quick},");
    json.push_str("  \"stages_ms\": {\n");
    for (i, (name, ms)) in stages.iter().enumerate() {
        let comma = if i + 1 < stages.len() { "," } else { "" };
        let _ = writeln!(json, "    \"{name}\": {ms:.3}{comma}");
    }
    json.push_str("  },\n");
    let total: f64 = stages.iter().map(|(_, ms)| ms).sum();
    let _ = writeln!(json, "  \"total_ms\": {total:.3}");
    json.push_str("}\n");
    write_artifact("BENCH_repro.json", &json);
}

/// Caches the expensive dataset collections across experiments.
#[derive(Default)]
struct Datasets {
    short: Option<Vec<MonitorOutput>>,
    medium: Option<Vec<MonitorOutput>>,
    weekly: Option<Vec<nws_timeseries::Series>>,
}

impl Datasets {
    fn short(&mut self, cfg: &ExperimentConfig) -> &Vec<MonitorOutput> {
        self.short.get_or_insert_with(|| {
            eprintln!("collecting 24h short-test dataset (6 hosts)...");
            short_dataset(cfg)
        })
    }

    fn medium(&mut self, cfg: &ExperimentConfig) -> &Vec<MonitorOutput> {
        self.medium.get_or_insert_with(|| {
            eprintln!("collecting 24h medium-term dataset (6 hosts)...");
            medium_dataset(cfg)
        })
    }

    fn weekly(&mut self, cfg: &ExperimentConfig) -> &Vec<nws_timeseries::Series> {
        self.weekly.get_or_insert_with(|| {
            eprintln!("collecting week-long load traces (6 hosts)...");
            weekly_load_series(cfg)
        })
    }
}

fn main() {
    let args = parse_args();
    nws_runtime::set_threads(args.threads);
    let mut cfg = if args.quick {
        ExperimentConfig::quick()
    } else {
        ExperimentConfig::default()
    };
    if let Some(seed) = args.seed {
        cfg.seed = seed;
    }
    let run_all = args.experiments.contains("all");
    let want = |name: &str| run_all || args.experiments.contains(name);
    let mut data = Datasets::default();
    let mut stages: Vec<(String, f64)> = Vec::new();

    if run_all {
        // Every dataset will be needed; collect all 18 monitoring runs
        // (6 hosts x short/medium/weekly) through one shared work queue
        // instead of dataset-by-dataset.
        timed(&mut stages, "datasets", || {
            eprintln!(
                "collecting all datasets concurrently (18 runs, {} threads)...",
                nws_runtime::threads()
            );
            let (short, medium, weekly) = all_datasets(&cfg);
            data.short = Some(short);
            data.medium = Some(medium);
            data.weekly = Some(weekly);
        });
    }

    if want("table1") {
        timed(&mut stages, "table1", || {
            let t = table1_from(data.short(&cfg));
            println!("\n{}", render_method_table(&t, Some(&paper::TABLE1)));
            write_artifact("table1.csv", &method_table_to_csv(&t));
        });
    }
    if want("table2") {
        timed(&mut stages, "table2", || {
            let t = table2_from(data.short(&cfg));
            println!("\n{}", render_method_table(&t, Some(&paper::TABLE2)));
            write_artifact("table2.csv", &method_table_to_csv(&t));
        });
    }
    if want("table3") {
        timed(&mut stages, "table3", || {
            let t = table3_from(data.short(&cfg));
            println!("\n{}", render_method_table(&t, Some(&paper::TABLE3)));
            write_artifact("table3.csv", &method_table_to_csv(&t));
        });
    }
    if want("table4") {
        timed(&mut stages, "table4", || {
            data.short(&cfg);
            data.weekly(&cfg);
            let rows = table4_from(
                data.short.as_ref().expect("just collected"),
                data.weekly.as_ref().expect("just collected"),
            );
            println!("\n{}", render_table4(&rows, true));
            write_artifact("table4.csv", &table4_to_csv(&rows));
        });
    }
    if want("table5") {
        timed(&mut stages, "table5", || {
            let t = table5_from(data.short(&cfg));
            println!("\n{}", render_method_table(&t, Some(&paper::TABLE5)));
            write_artifact("table5.csv", &method_table_to_csv(&t));
        });
    }
    if want("table6") {
        timed(&mut stages, "table6", || {
            let t = table6_from(data.medium(&cfg));
            println!("\n{}", render_method_table(&t, Some(&paper::TABLE6)));
            write_artifact("table6.csv", &method_table_to_csv(&t));
        });
    }
    if want("fig1") {
        timed(&mut stages, "fig1", || {
            let f = fig1_from(data.short(&cfg));
            println!("\n{}", f.title);
            for (host, series) in &f.series {
                println!("{}", ascii_series(series, 100, 12));
                write_artifact(&format!("fig1_{host}.csv"), &series_to_csv(series));
            }
        });
    }
    if want("fig2") {
        timed(&mut stages, "fig2", || {
            let f = fig2_from(data.short(&cfg));
            println!("\n{}", f.title);
            for (host, series) in &f.series {
                println!("{}", ascii_series(series, 100, 12));
                write_artifact(&format!("fig2_{host}.csv"), &series_to_csv(series));
            }
        });
    }
    if want("fig3") {
        timed(&mut stages, "fig3", || {
            let figs = fig3_from(data.weekly(&cfg), &nws_sim::UCSD_HOST_NAMES);

            println!("\nFigure 3: R/S pox plots (Unix load average, one week)");
            for fig in &figs {
                let pts: Vec<(f64, f64)> =
                    fig.points.iter().map(|p| (p.log10_d, p.log10_rs)).collect();
                println!(
                    "{}",
                    ascii_scatter(
                        &format!("{}  H = {:.2}", fig.host, fig.estimate.h),
                        &pts,
                        Some((fig.estimate.fit.slope, fig.estimate.fit.intercept)),
                        80,
                        20,
                    )
                );
                let mut csv = String::from("log10_d,log10_rs\n");
                for p in &fig.points {
                    let _ = writeln!(csv, "{},{}", p.log10_d, p.log10_rs);
                }
                write_artifact(&format!("fig3_{}.csv", fig.host), &csv);
            }
        });
    }
    if want("fig4") {
        timed(&mut stages, "fig4", || {
            let f = fig4_from(data.medium(&cfg));
            println!("\n{}", f.title);
            for (host, series) in &f.series {
                println!("{}", ascii_series(series, 100, 12));
                write_artifact(&format!("fig4_{host}.csv"), &series_to_csv(series));
            }
        });
    }
    if want("ablation") {
        timed(&mut stages, "ablation", || run_ablations(&cfg));
    }
    if want("sweep") {
        timed(&mut stages, "sweep", || run_sweeps(&cfg));
    }
    if want("robustness") {
        timed(&mut stages, "robustness", || run_robustness(&cfg));
    }
    if want("sched") {
        timed(&mut stages, "sched", || run_sched(args.quick));
    }
    if want("datasched") {
        timed(&mut stages, "datasched", || run_data_sched(&cfg));
    }
    if want("net") {
        timed(&mut stages, "net", || run_net(&cfg));
    }
    if want("loadstats") {
        timed(&mut stages, "loadstats", || run_loadstats(&cfg));
    }
    if want("faults") {
        timed(&mut stages, "faults", || {
            run_faults(&cfg, args.quick, args.smoke)
        });
    }
    // `perf` is a pure timing suite; it is only run when asked for by name
    // (it would double-run stages under `all`).
    if !run_all && args.experiments.contains("perf") {
        run_perf(&cfg, args.quick, args.smoke, &mut stages);
    }
    // `serve` spins up real sockets and load-generator threads, so like
    // `perf` it only runs when asked for by name.
    if !run_all && args.experiments.contains("serve") {
        timed(&mut stages, "serve", || {
            run_serve(&cfg, args.quick, args.smoke)
        });
    }
    // `fleet` sweeps synthetic rosters to six-figure host counts, so like
    // `perf` it only runs when asked for by name.
    if !run_all && args.experiments.contains("fleet") {
        timed(&mut stages, "fleet", || {
            run_fleet(cfg.seed, args.quick, args.smoke, args.quality)
        });
    }
    // `durability` replays seeded crash plans and spins real sockets for
    // the failover phase, so like `perf` it only runs when asked for by
    // name.
    if !run_all && args.experiments.contains("durability") {
        timed(&mut stages, "durability", || {
            run_durability(&cfg, args.quick, args.smoke)
        });
    }
    // `load` saturates real sockets with open-loop traffic, so like
    // `perf` it only runs when asked for by name.
    if !run_all && args.experiments.contains("load") {
        timed(&mut stages, "load", || {
            run_load(&cfg, args.quick, args.smoke, &args.transport)
        });
    }

    write_bench_artifact(&stages, args.quick);
    eprintln!(
        "wrote BENCH_repro.json ({} stages, {} threads)",
        stages.len(),
        nws_runtime::threads()
    );
}

/// The `perf` experiment: times representative stages of the pipeline
/// (dataset collection, grid fleet monitoring, scheduling) without
/// printing their tables, then runs the tracked kernel benchmark —
/// naive-vs-fast ACF and Hurst kernels, columnar-store ingest, the
/// extract-vs-borrowed read path, driver access patterns, and the serving
/// hot path — writing `BENCH_perf.json` at the repository root. Stage
/// timings land in `BENCH_repro.json` like any other stage's.
fn run_perf(cfg: &ExperimentConfig, quick: bool, smoke: bool, stages: &mut Vec<(String, f64)>) {
    println!(
        "\nperf: timing suite ({} threads over {} hosts)",
        nws_runtime::threads(),
        HostProfile::all().len()
    );
    timed(stages, "perf_datasets", || {
        let (short, medium, weekly) = all_datasets(cfg);
        std::hint::black_box((short.len(), medium.len(), weekly.len()))
    });
    let grid = timed(stages, "perf_grid_fleet", || {
        let mut grid = nws_grid::GridMonitor::ucsd(cfg.seed);
        let steps = if quick { 360 } else { 8640 };
        grid.run_steps(steps);
        grid
    });
    timed(stages, "perf_sched", || {
        let scfg = if quick {
            SchedConfig::quick()
        } else {
            SchedConfig::default()
        };
        std::hint::black_box(run_scheduling_experiment(&scfg).len())
    });
    let json = timed(stages, "perf_kernels", || {
        perf_kernels(cfg, quick, smoke, grid)
    });
    // The kernel baseline is tracked in version control, so unlike the
    // per-run artifacts under `results/` it lands at the repository root.
    match std::fs::write("BENCH_perf.json", &json) {
        Ok(()) => eprintln!("wrote BENCH_perf.json"),
        Err(e) => eprintln!("warning: cannot write BENCH_perf.json: {e}"),
    }
    for (name, ms) in stages.iter() {
        if name.starts_with("perf_") {
            println!("  {name:<18} {ms:>10.1} ms");
        }
    }
}

/// Deterministic AR(1) series with LCG noise: cheap to generate and
/// autocorrelated enough that the ACF/Hurst kernels do representative work.
fn synth_series(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = nws_stats::Rng::new(seed);
    let mut x = 0.5f64;
    (0..n)
        .map(|_| {
            x = 0.9 * x + 0.1 * rng.next_f64();
            x
        })
        .collect()
}

/// Best-of-`reps` wall-clock milliseconds for `f`.
fn best_ms<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = std::time::Instant::now();
        std::hint::black_box(f());
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// Wall-clock milliseconds plus allocator counters for one run of `f`.
fn timed_allocs<T>(f: impl FnOnce() -> T) -> (T, f64, AllocSnapshot) {
    let t0 = std::time::Instant::now();
    let (out, delta) = alloc_counter::measure(f);
    (out, t0.elapsed().as_secs_f64() * 1e3, delta)
}

/// The tracked kernel benchmark behind `BENCH_perf.json`.
///
/// Every section pairs the production path against the retained naive
/// reference on identical inputs, so the artifact records both the speedup
/// and the numerical agreement. The schema (key set and nesting) is
/// identical across tiers — smoke/quick runs only shrink the problem
/// sizes — which is what lets CI diff a fresh smoke artifact against the
/// committed full-tier baseline structurally.
fn perf_kernels(
    cfg: &ExperimentConfig,
    quick: bool,
    smoke: bool,
    grid: nws_grid::GridMonitor,
) -> String {
    use nws_grid::Metric;
    use nws_server::{GridState, InMemoryTransport, Transport};
    use nws_stats::{
        aggregated_variance_hurst, aggregated_variance_hurst_naive, autocovariance_fft,
        autocovariance_naive, clamped_autocorrelation, hurst_rs, pox_plot, pox_plot_naive,
    };
    use nws_wire::{Request, Response};
    use std::sync::{Arc, Mutex};

    let tier = if smoke {
        "smoke"
    } else if quick {
        "quick"
    } else {
        "full"
    };
    let lag = 360usize;
    println!("\nperf: tracked kernel benchmark (tier {tier}) -> BENCH_perf.json");

    // --- ACF: O(n*lag) direct sums vs the Wiener-Khinchin FFT path.
    let acf_sizes: &[usize] = if smoke {
        &[1024, 4096]
    } else if quick {
        &[4096, 16384]
    } else {
        &[4096, 16384, 100_000]
    };
    let mut acf_entries = Vec::new();
    for (i, &n) in acf_sizes.iter().enumerate() {
        let x = synth_series(n, cfg.seed.wrapping_add(i as u64));
        let l = lag.min(n.saturating_sub(2));
        let naive_ms = best_ms(3, || autocovariance_naive(&x, l));
        let fft_ms = best_ms(3, || autocovariance_fft(&x, l));
        let a = autocovariance_naive(&x, l).expect("non-degenerate series");
        let b = autocovariance_fft(&x, l).expect("non-degenerate series");
        let max_abs_diff = a
            .iter()
            .zip(&b)
            .map(|(p, q)| (p - q).abs())
            .fold(0.0f64, f64::max);
        let speedup = naive_ms / fft_ms.max(1e-9);
        println!(
            "  acf    n={n:<7} lag={l:<4} naive {naive_ms:>9.3} ms  fft {fft_ms:>8.3} ms  \
             speedup {speedup:>6.2}x  maxdiff {max_abs_diff:.2e}"
        );
        acf_entries.push(format!(
            "    {{ \"n\": {n}, \"lag\": {l}, \"naive_ms\": {naive_ms:.4}, \"fft_ms\": {fft_ms:.4}, \
             \"speedup\": {speedup:.3}, \"max_abs_diff\": {max_abs_diff:.3e} }}"
        ));
    }

    // --- Hurst: per-segment rescans vs the shared prefix-sum pass.
    let hn = if smoke {
        8192
    } else if quick {
        16384
    } else {
        131_072
    };
    let hx = synth_series(hn, cfg.seed ^ 0x4852);
    let pox_naive_ms = best_ms(3, || pox_plot_naive(&hx, 10));
    let pox_fast_ms = best_ms(3, || pox_plot(&hx, 10));
    let pox_points = pox_plot(&hx, 10).len();
    let av_naive_ms = best_ms(3, || aggregated_variance_hurst_naive(&hx));
    let av_fast_ms = best_ms(3, || aggregated_variance_hurst(&hx));
    println!(
        "  pox    n={hn:<7} naive {pox_naive_ms:>9.3} ms  fast {pox_fast_ms:>8.3} ms  \
         speedup {:>6.2}x  ({pox_points} points)",
        pox_naive_ms / pox_fast_ms.max(1e-9)
    );
    println!(
        "  aggvar n={hn:<7} naive {av_naive_ms:>9.3} ms  fast {av_fast_ms:>8.3} ms  \
         speedup {:>6.2}x",
        av_naive_ms / av_fast_ms.max(1e-9)
    );

    // --- Ingest: steady-state appends into the columnar ring at the
    // paper's retention (24 h of 10 s measurements).
    let appends: usize = if smoke {
        40_000
    } else if quick {
        200_000
    } else {
        2_000_000
    };
    let retain = 8640usize;
    let series_count = 4usize;
    let (_, ingest_ms, ingest_allocs) = timed_allocs(|| {
        let mut mem = nws_grid::Memory::new(nws_grid::MemoryConfig { retain });
        for i in 0..appends {
            let id = nws_grid::ResourceId((i % series_count) as u64);
            mem.append(id, (i / series_count) as f64 * 10.0, 0.5);
        }
        std::hint::black_box(mem.global_revision())
    });
    let ns_per_append = ingest_ms * 1e6 / appends as f64;
    println!(
        "  ingest {appends} appends x {series_count} series (retain {retain}): \
         {ingest_ms:.1} ms = {ns_per_append:.1} ns/append, {} allocs",
        ingest_allocs.calls
    );

    // --- Read path: an owned extract (one Vec<TimePoint> per access, as
    // the drivers used before the columnar store; rebuilt locally since
    // the shim left the Memory API) vs the borrowed-slice accessors.
    let profiles = HostProfile::all();
    let ids: Vec<nws_grid::ResourceId> = profiles
        .iter()
        .map(|p| {
            grid.registry()
                .lookup(p.name(), Metric::CpuAvailabilityHybrid)
                .expect("hybrid series registered")
        })
        .collect();
    let points_per_read = grid.memory().len(ids[0]);
    let reads = if smoke { 50 } else { 200 };
    // The owned extract shape is benchmarked on purpose: it IS the
    // pre-refactor reference the borrowed path is measured against.
    let owned_extract = |id: nws_grid::ResourceId| -> Vec<nws_timeseries::TimePoint> {
        let (times, values) = grid.memory().tail(id, usize::MAX);
        times
            .iter()
            .zip(values)
            .map(|(&t, &v)| nws_timeseries::TimePoint::new(t, v))
            .collect()
    };
    let (extract_sum, extract_ms, extract_allocs) = timed_allocs(|| {
        let mut acc = 0.0f64;
        for _ in 0..reads {
            for &id in &ids {
                let pts = owned_extract(id);
                acc += pts.last().map(|p| p.value).unwrap_or(0.0);
            }
        }
        acc
    });
    let (borrowed_sum, borrowed_ms, borrowed_allocs) = timed_allocs(|| {
        let mut acc = 0.0f64;
        for _ in 0..reads {
            for &id in &ids {
                acc += grid
                    .memory()
                    .with_series(id, |_, v| v.last().copied().unwrap_or(0.0));
            }
        }
        acc
    });
    assert_eq!(
        extract_sum.to_bits(),
        borrowed_sum.to_bits(),
        "read paths disagree"
    );
    let read_alloc_reduction = extract_allocs.calls as f64 / borrowed_allocs.calls.max(1) as f64;
    println!(
        "  read   {} series reads of {points_per_read} points: extract {extract_ms:.2} ms / \
         {} allocs, borrowed {borrowed_ms:.2} ms / {} allocs ({read_alloc_reduction:.0}x fewer)",
        reads * ids.len(),
        extract_allocs.calls,
        borrowed_allocs.calls
    );

    // --- Driver access patterns: the Fig. 2 / Fig. 3 / Table 4 kernel
    // pipelines over the warmed grid, measured three ways:
    //
    //   naive    extract() copies + naive kernels  (the pre-refactor shape)
    //   extract  extract() copies + fast kernels   (isolates kernel gains)
    //   current  borrowed slices  + fast kernels   (the production shape)
    //
    // `speedup` compares naive vs current end to end;
    // `access_alloc_reduction` compares extract vs current under the SAME
    // kernel, so it counts exactly the allocations the borrowed-slice
    // store eliminated (the fast kernels' own scratch buffers cancel out).
    let mut driver_entries = Vec::new();
    let mut driver_bench = |name: &str,
                            current: &mut dyn FnMut() -> usize,
                            extract_fast: &mut dyn FnMut() -> usize,
                            naive: &mut dyn FnMut() -> usize| {
        let (cur_out, current_ms, current_allocs) = timed_allocs(&mut *current);
        let (ext_out, extract_ms, extract_allocs) = timed_allocs(&mut *extract_fast);
        let (nav_out, naive_ms, naive_allocs) = timed_allocs(&mut *naive);
        std::hint::black_box((cur_out, ext_out, nav_out));
        let speedup = naive_ms / current_ms.max(1e-9);
        let access_allocs_saved = extract_allocs.calls.saturating_sub(current_allocs.calls);
        let access_bytes_saved = extract_allocs.bytes.saturating_sub(current_allocs.bytes);
        let access_alloc_reduction =
            extract_allocs.calls as f64 / current_allocs.calls.max(1) as f64;
        println!(
            "  {name:<6} naive {naive_ms:>8.3} ms / {:>4} allocs   current {current_ms:>8.3} ms \
             / {:>4} allocs   ({speedup:.2}x time; borrowed slices save {access_allocs_saved} \
             allocs / {access_bytes_saved} B = {access_alloc_reduction:.2}x)",
            naive_allocs.calls, current_allocs.calls
        );
        driver_entries.push(format!(
            "    {{ \"driver\": \"{name}\", \"n\": {points_per_read}, \
             \"naive_ms\": {naive_ms:.4}, \"naive_allocs\": {}, \"naive_bytes\": {}, \
             \"extract_ms\": {extract_ms:.4}, \"extract_allocs\": {}, \"extract_bytes\": {}, \
             \"current_ms\": {current_ms:.4}, \"current_allocs\": {}, \"current_bytes\": {}, \
             \"speedup\": {speedup:.3}, \"access_allocs_saved\": {access_allocs_saved}, \
             \"access_bytes_saved\": {access_bytes_saved}, \
             \"access_alloc_reduction\": {access_alloc_reduction:.3} }}",
            naive_allocs.calls,
            naive_allocs.bytes,
            extract_allocs.calls,
            extract_allocs.bytes,
            current_allocs.calls,
            current_allocs.bytes
        ));
    };
    let extracted_values = |id: nws_grid::ResourceId| -> Vec<f64> {
        let pts = owned_extract(id);
        pts.iter().map(|p| p.value).collect()
    };
    driver_bench(
        "fig2",
        &mut || {
            ids.iter()
                .map(|&id| {
                    grid.memory().with_series(id, |_, v| {
                        clamped_autocorrelation(v, lag)
                            .map(|r| r.len())
                            .unwrap_or(0)
                    })
                })
                .sum()
        },
        &mut || {
            ids.iter()
                .map(|&id| {
                    let v = extracted_values(id);
                    clamped_autocorrelation(&v, lag)
                        .map(|r| r.len())
                        .unwrap_or(0)
                })
                .sum()
        },
        &mut || {
            ids.iter()
                .map(|&id| {
                    let v = extracted_values(id);
                    let l = lag.min(v.len().saturating_sub(2));
                    autocovariance_naive(&v, l).map(|g| g.len()).unwrap_or(0)
                })
                .sum()
        },
    );
    driver_bench(
        "fig3",
        &mut || {
            ids.iter()
                .map(|&id| grid.memory().with_series(id, |_, v| pox_plot(v, 10).len()))
                .sum()
        },
        &mut || {
            ids.iter()
                .map(|&id| pox_plot(&extracted_values(id), 10).len())
                .sum()
        },
        &mut || {
            ids.iter()
                .map(|&id| pox_plot_naive(&extracted_values(id), 10).len())
                .sum()
        },
    );
    driver_bench(
        "table4",
        &mut || {
            ids.iter()
                .map(|&id| {
                    grid.memory().with_series(id, |_, v| {
                        let h = hurst_rs(v, 10).map(|e| e.points.len()).unwrap_or(0);
                        let a = aggregated_variance_hurst(v)
                            .map(|e| e.points.len())
                            .unwrap_or(0);
                        h + a
                    })
                })
                .sum()
        },
        &mut || {
            ids.iter()
                .map(|&id| {
                    let v = extracted_values(id);
                    let h = hurst_rs(&v, 10).map(|e| e.points.len()).unwrap_or(0);
                    let a = aggregated_variance_hurst(&v)
                        .map(|e| e.points.len())
                        .unwrap_or(0);
                    h + a
                })
                .sum()
        },
        &mut || {
            ids.iter()
                .map(|&id| {
                    let v = extracted_values(id);
                    let h = pox_plot_naive(&v, 10).len();
                    let a = aggregated_variance_hurst_naive(&v)
                        .map(|e| e.points.len())
                        .unwrap_or(0);
                    h + a
                })
                .sum()
        },
    );

    // --- Engine tick throughput: the deterministic event engine driving
    // the full six-host measurement pipeline (sensing → memory →
    // forecasts) across thread counts and batch windows. Every cell
    // commits identical events in identical order — the sweep measures
    // scheduling cost, not different work.
    let engine_steps: u64 = if smoke {
        120
    } else if quick {
        360
    } else {
        1_080
    };
    let engine_host_count = profiles.len() as u64;
    let prev_threads = nws_runtime::threads();
    let mut engine_entries = Vec::new();
    // Each cell warms its grid first (event arenas, measurement rings,
    // forecaster scratch all reach steady capacity), then times repeated
    // steady-state windows, keeping the best wall clock and the lowest
    // allocation count — the stable quantities a tracked baseline wants.
    let engine_reps = if smoke { 2 } else { 7 };
    for bench_threads in [1usize, 4] {
        for batch_slots in [1usize, 16, 64] {
            nws_runtime::set_threads(Some(bench_threads));
            let mut engine_grid = nws_grid::GridMonitor::new(
                &profiles,
                cfg.seed,
                nws_grid::GridMonitorConfig {
                    batch_slots,
                    ..nws_grid::GridMonitorConfig::default()
                },
            );
            engine_grid.run_steps(engine_steps.min(130));
            let warmed = engine_grid.slots();
            let mut tick_ms = f64::INFINITY;
            let mut steady_allocs = u64::MAX;
            for _ in 0..engine_reps {
                let (_, ms, allocs) = timed_allocs(|| {
                    engine_grid.run_steps(engine_steps);
                    engine_grid.slots()
                });
                tick_ms = tick_ms.min(ms);
                steady_allocs = steady_allocs.min(allocs.calls);
            }
            assert_eq!(
                engine_grid.slots(),
                warmed + engine_reps as u64 * engine_steps,
                "engine ran every slot"
            );
            let events = engine_steps * engine_host_count;
            let events_per_sec = events as f64 / (tick_ms / 1e3).max(1e-9);
            let allocs_per_event = steady_allocs as f64 / events as f64;
            println!(
                "  engine threads={bench_threads} batch={batch_slots:<2}: {events} events in \
                 {tick_ms:>7.2} ms = {events_per_sec:>8.0} events/s ({steady_allocs} allocs = \
                 {allocs_per_event:.3}/event)"
            );
            engine_entries.push(format!(
                "    {{ \"threads\": {bench_threads}, \"batch_slots\": {batch_slots}, \
                 \"slots\": {engine_steps}, \"hosts\": {engine_host_count}, \
                 \"events\": {events}, \"ms\": {tick_ms:.4}, \
                 \"events_per_sec\": {events_per_sec:.0}, \"allocs\": {steady_allocs}, \
                 \"allocs_per_event\": {allocs_per_event:.4} }}"
            ));
        }
    }
    nws_runtime::set_threads(Some(prev_threads));

    // --- Fleet scaling: the same engine over synthetic rosters from
    // tens to (full tier) a hundred thousand hosts, with hierarchical
    // best-host aggregation. Deterministic outputs land in the entries;
    // the standalone `repro fleet` experiment writes the identity CSV.
    let (fleet_entries, _fleet_csv) = fleet_sweep(cfg.seed, quick, smoke);

    // --- Forecast quality: the panel-v2 error tables (per-predictor
    // MAE/MSE) over the three prediction scenarios. Deterministic, not
    // timing — the artifact tracks accuracy next to speed.
    let (quality_entries, _quality_csv) = fleet_quality(cfg.seed, quick, smoke);

    // --- Durability: WAL replay and snapshot recovery over a journaled
    // reference run. Both recovery paths must land on the live run's
    // exact memory fingerprint; the artifact tracks how fast they get
    // there.
    let dur_steps: u64 = if smoke {
        120
    } else if quick {
        360
    } else {
        1_080
    };
    let mut dur_grid = nws_grid::GridMonitor::ucsd(cfg.seed);
    dur_grid.attach_journal(nws_grid::Wal::new());
    dur_grid.run_steps(dur_steps / 2);
    let dur_snap = dur_grid.memory().snapshot_bytes();
    dur_grid.run_steps(dur_steps - dur_steps / 2);
    let dur_wal = dur_grid
        .journal()
        .expect("journal attached")
        .bytes()
        .to_vec();
    let dur_golden = dur_grid.memory().fingerprint();
    let mem_config = nws_grid::GridMonitorConfig::default().memory;
    let genesis_ms = best_ms(3, || {
        nws_grid::recover_memory(mem_config, None, &dur_wal, |_| {})
    });
    let (genesis_mem, genesis_report) =
        nws_grid::recover_memory(mem_config, None, &dur_wal, |_| {});
    assert_eq!(
        genesis_mem.fingerprint(),
        dur_golden,
        "genesis recovery diverged from the live run"
    );
    let snap_ms = best_ms(3, || {
        nws_grid::recover_memory(mem_config, Some(&dur_snap), &dur_wal, |_| {})
    });
    let (snap_mem, snap_report) =
        nws_grid::recover_memory(mem_config, Some(&dur_snap), &dur_wal, |_| {});
    assert_eq!(
        snap_mem.fingerprint(),
        dur_golden,
        "snapshot recovery diverged from the live run"
    );
    let dur_records = genesis_report.replayed;
    let records_per_sec = dur_records as f64 / (genesis_ms / 1e3).max(1e-9);
    println!(
        "  durab  {dur_records} records / {} B journal: genesis {genesis_ms:>7.2} ms \
         ({records_per_sec:.0} rec/s), snapshot+suffix {snap_ms:>7.2} ms \
         (replayed {})",
        dur_wal.len(),
        snap_report.replayed
    );

    // --- Serving hot path: the in-memory transport (full codec, no
    // sockets) over the warmed grid, with the per-connection scratch
    // buffers and the revision-keyed query cache in play.
    let reqs = if smoke {
        300
    } else if quick {
        1_000
    } else {
        5_000
    };
    let hosts: Vec<String> = profiles.iter().map(|p| p.name().to_string()).collect();
    let mut transport = InMemoryTransport::new(Arc::new(Mutex::new(GridState::new(grid))));
    let (_, serve_ms, serve_allocs) = timed_allocs(|| {
        let mut ok = 0usize;
        for i in 0..reqs {
            let host = hosts[i % hosts.len()].clone();
            let req = match i % 4 {
                0 => Request::Snapshot,
                1 => Request::BestHost,
                2 => Request::Forecast { host },
                _ => Request::SeriesTail { host, n: 32 },
            };
            match transport.call(&req).expect("in-memory serve") {
                Response::Error(e) => panic!("serve error: {}", e.message),
                _ => ok += 1,
            }
        }
        std::hint::black_box(ok)
    });
    let us_per_request = serve_ms * 1e3 / reqs as f64;
    let allocs_per_request = serve_allocs.calls as f64 / reqs as f64;
    println!(
        "  serve  {reqs} in-memory requests: {serve_ms:.2} ms = {us_per_request:.2} us/req, \
         {allocs_per_request:.1} allocs/req"
    );

    // --- Assemble the artifact (hand-rolled JSON, fixed key set).
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"schema_version\": 1,");
    let _ = writeln!(json, "  \"tier\": \"{tier}\",");
    let _ = writeln!(json, "  \"threads\": {},", nws_runtime::threads());
    let _ = writeln!(json, "  \"acf\": [");
    let _ = writeln!(json, "{}", acf_entries.join(",\n"));
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"hurst\": {{");
    let _ = writeln!(
        json,
        "    \"pox_plot\": {{ \"n\": {hn}, \"min_d\": 10, \"naive_ms\": {pox_naive_ms:.4}, \
         \"fast_ms\": {pox_fast_ms:.4}, \"speedup\": {:.3}, \"points\": {pox_points} }},",
        pox_naive_ms / pox_fast_ms.max(1e-9)
    );
    let _ = writeln!(
        json,
        "    \"aggregated_variance\": {{ \"n\": {hn}, \"naive_ms\": {av_naive_ms:.4}, \
         \"fast_ms\": {av_fast_ms:.4}, \"speedup\": {:.3} }}",
        av_naive_ms / av_fast_ms.max(1e-9)
    );
    let _ = writeln!(json, "  }},");
    let _ = writeln!(
        json,
        "  \"ingest\": {{ \"appends\": {appends}, \"series\": {series_count}, \
         \"retain\": {retain}, \"ms\": {ingest_ms:.4}, \"ns_per_append\": {ns_per_append:.2}, \
         \"allocs\": {} }},",
        ingest_allocs.calls
    );
    let _ = writeln!(
        json,
        "  \"memory_read\": {{ \"reads\": {}, \"points_per_read\": {points_per_read}, \
         \"extract_ms\": {extract_ms:.4}, \"extract_allocs\": {}, \
         \"borrowed_ms\": {borrowed_ms:.4}, \"borrowed_allocs\": {}, \
         \"alloc_reduction\": {read_alloc_reduction:.1} }},",
        reads * ids.len(),
        extract_allocs.calls,
        borrowed_allocs.calls
    );
    let _ = writeln!(json, "  \"drivers\": [");
    let _ = writeln!(json, "{}", driver_entries.join(",\n"));
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"engine\": [");
    let _ = writeln!(json, "{}", engine_entries.join(",\n"));
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"fleet\": [");
    let _ = writeln!(json, "{}", fleet_entries.join(",\n"));
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"forecast_quality\": [");
    let _ = writeln!(json, "{}", quality_entries.join(",\n"));
    let _ = writeln!(json, "  ],");
    let _ = writeln!(
        json,
        "  \"durability\": {{ \"steps\": {dur_steps}, \"wal_bytes\": {}, \
         \"records\": {dur_records}, \"snapshot_bytes\": {}, \
         \"genesis_recover_ms\": {genesis_ms:.4}, \"records_per_sec\": {records_per_sec:.0}, \
         \"snapshot_recover_ms\": {snap_ms:.4}, \"snapshot_replayed\": {} }},",
        dur_wal.len(),
        dur_snap.len(),
        snap_report.replayed
    );
    let _ = writeln!(
        json,
        "  \"serve\": {{ \"requests\": {reqs}, \"ms\": {serve_ms:.4}, \
         \"us_per_request\": {us_per_request:.3}, \"allocs_per_request\": {allocs_per_request:.2} }}"
    );
    json.push_str("}\n");
    json
}

/// Host counts swept by the fleet benchmark at each tier.
fn fleet_host_counts(quick: bool, smoke: bool) -> &'static [usize] {
    if smoke {
        &[10, 100, 1_000]
    } else if quick {
        &[10, 100, 1_000, 10_000]
    } else {
        &[10, 100, 1_000, 10_000, 100_000]
    }
}

/// Sweeps `FleetMonitor` across the tier's host counts, printing one row
/// per cell. Returns the JSON entries for the `fleet` section of
/// `BENCH_perf.json` plus a CSV of the deterministic columns only
/// (winners and fingerprints, no timings), which `repro fleet` writes so
/// CI can byte-diff runs at different thread counts.
fn fleet_sweep(seed: u64, quick: bool, smoke: bool) -> (Vec<String>, String) {
    use nws_grid::{FleetConfig, FleetMonitor};

    let reps = if smoke { 2 } else { 3 };
    let mut entries = Vec::new();
    let mut csv =
        String::from("hosts,racks,slots,events,best_host,best_forecast_bits,fingerprint\n");
    for &hosts in fleet_host_counts(quick, smoke) {
        // Warm past one retain window plus one ring doubling so the
        // measured window touches no growth paths: rings, arenas, and
        // the forecaster table are all at final capacity afterwards.
        let warmup: u64 = 130;
        let measure: u64 = (400_000 / hosts as u64).clamp(4, 400);
        let (mut fleet, _build_ms, build_allocs) = timed_allocs(|| {
            let mut fleet = FleetMonitor::new(FleetConfig {
                hosts,
                seed,
                ..FleetConfig::default()
            });
            fleet.run_steps(warmup);
            fleet
        });
        let bytes_per_host = build_allocs.bytes as f64 / hosts as f64;
        let mut cell_ms = f64::INFINITY;
        let mut steady_allocs = u64::MAX;
        for _ in 0..reps {
            let (_, ms, allocs) = timed_allocs(|| {
                fleet.run_steps(measure);
                fleet.slots()
            });
            cell_ms = cell_ms.min(ms);
            steady_allocs = steady_allocs.min(allocs.calls);
        }
        let events = hosts as u64 * measure;
        let events_per_sec = events as f64 / (cell_ms / 1e3).max(1e-9);
        let allocs_per_event = steady_allocs as f64 / events as f64;
        let (best_host, best_forecast) = fleet.best_host().expect("non-empty fleet");
        let fingerprint = fleet.fingerprint();
        let racks = fleet.rack_count();
        println!(
            "  fleet {hosts:>6} hosts / {racks:>4} racks: {events:>7} events in \
             {cell_ms:>8.2} ms = {events_per_sec:>9.0} events/s ({allocs_per_event:.3} \
             allocs/event, {bytes_per_host:.0} B/host, best {best_host} @ {best_forecast:.4})"
        );
        entries.push(format!(
            "    {{ \"hosts\": {hosts}, \"racks\": {racks}, \"slots\": {measure}, \
             \"events\": {events}, \"ms\": {cell_ms:.4}, \
             \"events_per_sec\": {events_per_sec:.0}, \"allocs\": {steady_allocs}, \
             \"allocs_per_event\": {allocs_per_event:.4}, \
             \"build_bytes_per_host\": {bytes_per_host:.0}, \
             \"best_host\": {best_host}, \"best_forecast\": {best_forecast:.6}, \
             \"fingerprint\": \"{fingerprint:#018x}\" }}"
        ));
        let _ = writeln!(
            csv,
            "{hosts},{racks},{},{},{best_host},{:#018x},{fingerprint:#018x}",
            fleet.slots(),
            fleet.events(),
            best_forecast.to_bits(),
        );
    }
    (entries, csv)
}

/// The standalone `fleet` experiment: runs the sweep at the current
/// thread setting and writes the deterministic columns to
/// `results/fleet_sweep.csv`, the artifact CI diffs across thread counts.
/// With `--quality` it runs the forecast-quality sweep instead and
/// writes `results/fleet_quality.csv`.
fn run_fleet(seed: u64, quick: bool, smoke: bool, quality: bool) {
    if quality {
        println!(
            "\n== fleet forecast quality sweep (threads={}) ==",
            nws_runtime::threads()
        );
        let (_entries, csv) = fleet_quality(seed, quick, smoke);
        write_artifact("fleet_quality.csv", &csv);
        return;
    }
    println!(
        "\n== fleet scaling sweep (threads={}) ==",
        nws_runtime::threads()
    );
    let (_entries, csv) = fleet_sweep(seed, quick, smoke);
    write_artifact("fleet_sweep.csv", &csv);
}

/// The forecast-quality sweep behind `repro fleet --quality` and the
/// `forecast_quality` section of `BENCH_perf.json`: the full predictor
/// panel (dynamic-selection members plus the ARMA pair) races over
/// three prediction scenarios, reporting Table 2/3-shaped per-predictor
/// MAE/MSE rows.
///
/// 1. `synthetic-ar1` — the fleet's AR(1)-style synthetic rosters, the
///    panel scored on every host of an `Extended`-panel fleet;
/// 2. `trace-mixture` — the same fleet replaying UCSD availability
///    traces (Eq. 1 of the simulated workstation mixes) under a seeded
///    fault plan, so the panel is scored across gaps;
/// 3. `transfer-time` — the Vazhkudai–Schopf scenario: predicting
///    file-transfer durations over monitored links, where regressing on
///    bandwidth *and* endpoint CPU beats bandwidth alone.
///
/// Every number is a pure function of the seed — byte-identical at any
/// thread count — so `results/fleet_quality.csv` is CI-diffable.
fn fleet_quality(seed: u64, quick: bool, smoke: bool) -> (Vec<String>, String) {
    use nws_faults::{FaultPlan, FaultRates};
    use nws_forecast::PanelSpec;
    use nws_grid::{FleetConfig, FleetMonitor, FleetPanel, FleetRoster};
    use nws_net::TransferScenario;
    use nws_sim::ucsd_availability_traces;

    let (hosts, steps) = if smoke {
        (32usize, 160u64)
    } else if quick {
        (64, 240)
    } else {
        (128, 480)
    };
    let transfers = if smoke {
        160
    } else if quick {
        320
    } else {
        640
    };
    let panel_config = |hosts: usize| FleetConfig {
        hosts,
        seed,
        panel: FleetPanel::Bank(PanelSpec::Extended),
        ..FleetConfig::default()
    };
    let mut scenarios: Vec<(&'static str, Vec<nws_forecast::ErrorRow>)> = Vec::new();

    // Scenario 1: synthetic AR(1)-style rosters, fault-free.
    let mut fleet = FleetMonitor::with_roster(
        panel_config(hosts),
        FleetRoster::Synthetic,
        &FaultPlan::none(),
    );
    fleet.run_steps(steps);
    scenarios.push(("synthetic-ar1", fleet.quality_table()));

    // Scenario 2: hosts replay UCSD availability traces at seeded phase
    // offsets, under a fleet-scale fault plan (outages and lost
    // measurements become forecaster gaps).
    let traces = ucsd_availability_traces(seed ^ 0x7ACE, steps as usize + 64);
    let mut fleet = FleetMonitor::with_roster(
        panel_config(hosts),
        FleetRoster::TraceMixture(traces),
        &FaultPlan::seeded(seed ^ 0xFA17, FaultRates::uniform(0.05)),
    );
    fleet.run_steps(steps);
    let gaps = fleet.gaps();
    assert!(gaps > 0, "the fault plan must produce gaps at fleet scale");
    scenarios.push(("trace-mixture", fleet.quality_table()));

    // Scenario 3: transfer times over the demo link grid, each link's
    // endpoint following its own availability trace.
    let mut links = LinkMonitor::demo_grid(seed);
    let cpu = ucsd_availability_traces(seed ^ 0x00C4, transfers);
    let mut transfer = TransferScenario::new(4.0 * 1024.0 * 1024.0, 30);
    let mut cpu_steps: Vec<_> = cpu.iter().map(|trace| trace.iter()).collect();
    for _ in 0..transfers {
        let samples = links.probe_cycle();
        for (steps, sample) in cpu_steps.iter_mut().zip(samples) {
            let availability = *steps.next().expect("trace covers every cycle");
            if let Some(s) = sample {
                transfer.observe(s.bandwidth, availability);
            }
        }
    }
    scenarios.push(("transfer-time", transfer.error_table()));

    println!(
        "  {hosts} hosts x {steps} slots per fleet scenario, {} gap(s) under faults, \
         {} transfers over {} links",
        gaps,
        transfer.observations(),
        links.len()
    );
    let mut entries = Vec::new();
    let mut csv = String::from("scenario,predictor,scored,mae,mse\n");
    println!(
        "  {:<14} {:<22} {:>7} {:>10} {:>10}",
        "scenario", "predictor", "scored", "mae", "mse"
    );
    for (name, rows) in &scenarios {
        assert!(!rows.is_empty(), "{name} produced no error rows");
        for row in rows {
            let (mae, mse) = if row.scored == 0 {
                (0.0, 0.0)
            } else {
                (row.mae(), row.mse())
            };
            println!(
                "  {name:<14} {:<22} {:>7} {mae:>10.4} {mse:>10.4}",
                row.name, row.scored
            );
            // Shortest-round-trip float formatting: full precision, and
            // deterministic, so the CSV byte-diffs across thread counts.
            let _ = writeln!(csv, "{name},{},{},{mae},{mse}", row.name, row.scored);
            entries.push(format!(
                "    {{ \"scenario\": \"{name}\", \"predictor\": \"{}\", \"scored\": {}, \
                 \"mae\": {mae:.6}, \"mse\": {mse:.6} }}",
                row.name, row.scored
            ));
        }
    }
    (entries, csv)
}

/// The `durability` experiment: a crash-recovery sweep plus a serving
/// availability phase.
///
/// Phase 1 grows a journaled reference run, then kills it at fixed
/// fractions and at every cut a seeded [`CrashPlan`] produces — clean
/// kills, torn final records, truncated snapshots — and proves each
/// recovery (replay the valid prefix, resume over the rest of the
/// journal) lands on the live run's exact memory fingerprint. The
/// deterministic columns (cut offsets, bytes kept, records replayed,
/// fingerprints) go to `results/durability_sweep.csv`, which CI
/// byte-diffs across thread counts; recovery wall-clock is printed only.
///
/// Phase 2 spins up a TCP primary, replicates its journal into a
/// [`ReplicaState`] over the wire protocol, serves the replica on a
/// second socket, and drives a [`FailoverClient`] through a mid-stream
/// primary kill: every request must be answered, and the failover count
/// and post-kill latency are reported.
fn run_durability(cfg: &ExperimentConfig, quick: bool, smoke: bool) {
    use nws_faults::{CrashKind, CrashPlan};
    use nws_grid::wal::replay;
    use nws_grid::{recover_memory, GridMonitor, GridMonitorConfig, RecoverySource, Wal};
    use nws_server::{
        ClientConfig, FailoverClient, GridState, NwsClient, NwsServer, ReplicaState, ServerConfig,
        Transport,
    };
    use std::time::Instant;

    let steps: u64 = if smoke {
        120
    } else if quick {
        240
    } else {
        720
    };
    let crash_rounds = if smoke { 6 } else { 12 };
    println!(
        "\n== durability: crash-recovery sweep ({steps} slots, {} hosts, \
         {crash_rounds} seeded crashes) ==",
        HostProfile::all().len()
    );

    // The golden journaled run, with a snapshot captured halfway.
    let mut gm = GridMonitor::ucsd(cfg.seed);
    gm.attach_journal(Wal::new());
    gm.run_steps(steps / 2);
    let snapshot = gm.memory().snapshot_bytes();
    gm.run_steps(steps - steps / 2);
    let golden = gm.memory().fingerprint();
    let wal = gm.journal().expect("journal attached").bytes().to_vec();
    let mem_config = GridMonitorConfig::default().memory;

    // The crash schedule: fixed kill fractions plus the seeded plan.
    let mut cuts: Vec<(String, &'static str, usize)> = [0.25f64, 0.50, 0.99]
        .iter()
        .map(|&f| {
            (
                format!("fraction_{f:.2}"),
                "clean_kill",
                (wal.len() as f64 * f) as usize,
            )
        })
        .collect();
    let mut plan = CrashPlan::seeded(cfg.seed ^ 0xC4A5);
    for i in 0..crash_rounds {
        let event = plan.next_event();
        let kind = match event.kind {
            CrashKind::CleanKill => "clean_kill",
            CrashKind::TornRecord => "torn_record",
            CrashKind::TruncatedSnapshot => "truncated_snapshot",
        };
        cuts.push((format!("plan_{i}"), kind, event.cut_at(wal.len())));
    }
    cuts.push(("snapshot_suffix".to_string(), "snapshot", wal.len()));

    let mut csv = String::from(
        "scenario,kind,cut_bytes,valid_bytes,replayed,torn_tail,source,fingerprint,matches\n",
    );
    let mut worst_recover_ms = 0.0f64;
    for (scenario, kind, cut) in &cuts {
        let t0 = Instant::now();
        let (mut mem, report) = match *kind {
            // A half-written snapshot: recovery must reject it and fall
            // back to genesis replay of the full journal.
            "truncated_snapshot" => {
                let snap_cut = (*cut).min(snapshot.len().saturating_sub(1));
                recover_memory(mem_config, Some(&snapshot[..snap_cut]), &wal, |_| {})
            }
            // An intact snapshot plus the journal suffix.
            "snapshot" => recover_memory(mem_config, Some(&snapshot), &wal, |_| {}),
            // A kill at `cut`: replay whatever survived, torn tail and
            // all, then resume over the rest of the golden journal (the
            // deterministic restart re-run).
            _ => recover_memory(mem_config, None, &wal[..*cut], |_| {}),
        };
        let torn = report.tail_error.is_some();
        if matches!(*kind, "clean_kill" | "torn_record") {
            let resumed = replay(&wal, report.valid_wal_len, |rec| mem.apply(rec));
            assert!(resumed.error.is_none(), "golden journal replays cleanly");
        }
        let recover_ms = t0.elapsed().as_secs_f64() * 1e3;
        worst_recover_ms = worst_recover_ms.max(recover_ms);
        let fingerprint = mem.fingerprint();
        let matches = fingerprint == golden;
        assert!(
            matches,
            "{scenario} ({kind}, cut {cut}) did not recover the golden state"
        );
        let source = match report.source {
            RecoverySource::Genesis => "genesis",
            RecoverySource::Snapshot { .. } => "snapshot",
        };
        println!(
            "  {scenario:<16} {kind:<18} cut {cut:>7} B -> kept {:>7} B, replayed {:>5}, \
             {source:<8} {recover_ms:>7.2} ms  ok",
            report.valid_wal_len, report.replayed
        );
        let _ = writeln!(
            csv,
            "{scenario},{kind},{cut},{},{},{torn},{source},{fingerprint:#018x},{matches}",
            report.valid_wal_len, report.replayed
        );
    }
    write_artifact("durability_sweep.csv", &csv);
    println!(
        "  all {} recoveries bit-identical (golden {golden:#018x}); worst recovery \
         {worst_recover_ms:.2} ms",
        cuts.len()
    );

    // --- Phase 2: serving availability through replica churn and a
    // primary kill. A seeded CrashPlan places a replica kill inside the
    // first half of the request stream; the replica restarts a window
    // later (fresh state, re-synced over the wire, fresh socket), and
    // the primary dies at the halfway mark — so the failover target is
    // the *restarted* replica. Every request must still be answered.
    let requests = if smoke { 40 } else { 200 };
    let mut churn = CrashPlan::seeded(cfg.seed ^ 0x5EC0);
    let replica_kill_at = requests / 8 + churn.next_event().cut_at(requests / 8);
    let replica_restart_at = replica_kill_at + requests / 8;
    let primary_kill_at = requests / 2;
    assert!(
        replica_restart_at < primary_kill_at,
        "the replica must be back before the primary dies"
    );
    println!(
        "\n== durability: failover availability ({requests} requests; replica killed at \
         {replica_kill_at}, restarted at {replica_restart_at}, primary killed at \
         {primary_kill_at}) =="
    );
    let mut gm = GridMonitor::ucsd(cfg.seed);
    gm.attach_journal(Wal::new());
    gm.run_steps(steps.min(240));
    let hosts: Vec<String> = HostProfile::all()
        .iter()
        .map(|p| p.name().to_string())
        .collect();
    let host_refs: Vec<&str> = HostProfile::all().iter().map(|p| p.name()).collect();
    let expected_fingerprint = gm.memory().fingerprint();

    let mut primary =
        NwsServer::spawn(GridState::new(gm), ServerConfig::default()).expect("bind primary");
    let mut feed = NwsClient::connect(primary.addr(), ClientConfig::default()).expect("connect");
    let mut replica = ReplicaState::new(&host_refs, GridMonitorConfig::default());
    let sync_t0 = Instant::now();
    replica.sync(&mut feed).expect("replicate over tcp");
    let sync_ms = sync_t0.elapsed().as_secs_f64() * 1e3;
    drop(feed);
    assert!(replica.synced(), "replica caught up to the primary");
    assert_eq!(
        replica.memory().fingerprint(),
        expected_fingerprint,
        "replica is byte-identical to the primary"
    );
    println!(
        "  replica caught up over the wire in {sync_ms:.2} ms ({} journal bytes applied)",
        replica.applied()
    );
    let mut replica_server =
        Some(NwsServer::spawn(replica, ServerConfig::default()).expect("bind replica"));

    let mut client = FailoverClient::new(
        &[
            primary.addr(),
            replica_server.as_ref().expect("just spawned").addr(),
        ],
        ClientConfig {
            io_timeout: std::time::Duration::from_millis(500),
            retries: 0,
            backoff_base: std::time::Duration::from_millis(1),
            backoff_cap: std::time::Duration::from_millis(5),
            ..ClientConfig::default()
        },
    );
    let mut served = 0usize;
    let mut failover_latency_ms = 0.0f64;
    let mut restart_sync_ms = 0.0f64;
    for i in 0..requests {
        if i == replica_kill_at {
            if let Some(mut dying) = replica_server.take() {
                dying.shutdown();
            }
        }
        if i == replica_restart_at {
            // The restarted replica is a blank state: it must re-sync
            // over the wire from the still-live primary, land on the
            // same fingerprint, and come up on a fresh socket that the
            // operator repoints the client at.
            let t0 = Instant::now();
            let mut feed =
                NwsClient::connect(primary.addr(), ClientConfig::default()).expect("reconnect");
            let mut fresh = ReplicaState::new(&host_refs, GridMonitorConfig::default());
            fresh.sync(&mut feed).expect("re-sync restarted replica");
            restart_sync_ms = t0.elapsed().as_secs_f64() * 1e3;
            assert!(fresh.synced(), "restarted replica caught up");
            assert_eq!(
                fresh.memory().fingerprint(),
                expected_fingerprint,
                "restarted replica is byte-identical to the primary"
            );
            let server =
                NwsServer::spawn(fresh, ServerConfig::default()).expect("bind restarted replica");
            client.set_endpoint(1, server.addr());
            replica_server = Some(server);
        }
        if i == primary_kill_at {
            primary.shutdown();
        }
        let host = &hosts[i % hosts.len()];
        let t0 = Instant::now();
        client.forecast(host).expect("every request is served");
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        if i == primary_kill_at {
            failover_latency_ms = ms;
        }
        served += 1;
    }
    assert_eq!(served, requests, "availability through the churn is 100%");
    assert!(
        client.failovers() >= 1,
        "the primary kill forced a failover"
    );
    println!(
        "  served {served}/{requests} requests through the churn; {} failover(s), \
         replica restart re-sync {restart_sync_ms:.2} ms, first post-kill request \
         {failover_latency_ms:.2} ms",
        client.failovers()
    );
    let mut avail_csv = String::from(
        "requests,served,failovers,replica_kill_at,replica_restart_at,primary_kill_at,\
         replica_synced\n",
    );
    let _ = writeln!(
        avail_csv,
        "{requests},{served},{},{replica_kill_at},{replica_restart_at},{primary_kill_at},true",
        client.failovers()
    );
    write_artifact("durability_availability.csv", &avail_csv);
}

/// The `load` experiment: the coordinated-omission-free serving
/// benchmark behind the committed `BENCH_serve.json`.
///
/// Phase 0 fingerprints the seeded inputs (arrival schedules, request
/// mix, a serialized in-memory replay) into `results/load_sweep.csv` —
/// deterministic columns only, so CI can byte-diff the file across
/// thread counts (measured `soak_series` rows are the one exception;
/// CI filters them by prefix). Phases 1-3 then measure: an open-loop
/// rate sweep over the threaded TCP server, the epoll reactor, and
/// the in-memory transport (latency charged from each request's
/// precomputed virtual arrival, so server backlog cannot hide), a
/// closed-loop comparison at the same mix, and a geometric binary
/// search for the max sustainable rate under a p99 cap. Phase 4 soaks
/// the same open-loop schedule into fixed time windows (a p50/p99
/// series over time), phase 5 sweeps the connection-churn rate
/// (connects/second, the accept-path axis), and phase 6 piles idle
/// connections onto the reactor until the threaded server's cap looks
/// quaint, recording p99 versus connection count. Phase 7 turns the
/// adversarial personas loose on a tight-deadline server and asserts
/// every defense trips; phase 8 replays the mix through a
/// [`FailoverClient`] while a seeded [`CrashPlan`] picks the moment the
/// primary dies, reporting availability and post-kill latency. All
/// wall-clock numbers go to the JSON (and stdout) only.
///
/// `transport_axis` ("threaded", "reactor", or "all") selects which
/// socket transports phases 1-5 drive; the in-memory baseline always
/// runs.
fn run_load(cfg: &ExperimentConfig, quick: bool, smoke: bool, transport_axis: &str) {
    use nws_faults::CrashPlan;
    use nws_grid::{GridMonitorConfig, Wal};
    use nws_loadgen::{
        churn, closed_loop, fnv1a, max_sustainable_rps, open_loop, personas, soak, ArrivalSchedule,
        ChurnConnect, InterArrival, LatencyHistogram, MixRatios, RateSearch, RequestStream,
    };
    use nws_server::{
        ClientConfig, FailoverClient, GridState, InMemoryTransport, NwsClient, NwsServer,
        ReactorConfig, ReactorServer, ReplicaState, ServerConfig, Transport,
    };
    use nws_wire::{ErrorCode, Request, Response};
    use std::sync::{Arc, Mutex};
    use std::time::{Duration, Instant};

    struct Tier {
        name: &'static str,
        warm_steps: u64,
        /// Offered rates for the open-loop sweep, requests/second.
        rates: &'static [u64],
        /// Requests per open-loop point.
        n_open: usize,
        workers: usize,
        /// Requests per worker in the closed-loop phase.
        n_closed_per_worker: usize,
        search_iters: u32,
        search_n: usize,
        failover_requests: usize,
        /// Soak window width; the schedule length over this gives the
        /// number of p50/p99 rows in the time series.
        soak_window_ms: u64,
        /// Offered connection-arrival rates for the churn sweep,
        /// connects/second.
        churn_cps: &'static [u64],
        /// Connection arrivals per churn point.
        churn_conns: usize,
        /// Idle connections the reactor must hold in phase 6.
        conc_target: usize,
        /// Probe requests per concurrency milestone.
        conc_probe: usize,
    }
    let tier = if smoke {
        Tier {
            name: "smoke",
            warm_steps: 60,
            rates: &[1000, 4000],
            n_open: 400,
            workers: 8,
            n_closed_per_worker: 200,
            search_iters: 3,
            search_n: 200,
            failover_requests: 40,
            soak_window_ms: 25,
            churn_cps: &[500],
            churn_conns: 80,
            conc_target: 150,
            conc_probe: 100,
        }
    } else if quick {
        Tier {
            name: "quick",
            warm_steps: 120,
            rates: &[1000, 4000, 16000],
            n_open: 800,
            workers: 8,
            n_closed_per_worker: 400,
            search_iters: 5,
            search_n: 400,
            failover_requests: 80,
            soak_window_ms: 50,
            churn_cps: &[250, 1000],
            churn_conns: 200,
            conc_target: 400,
            conc_probe: 200,
        }
    } else {
        Tier {
            name: "full",
            warm_steps: 240,
            rates: &[1000, 4000, 16000, 64000],
            n_open: 2500,
            workers: 8,
            n_closed_per_worker: 1000,
            search_iters: 7,
            search_n: 1000,
            failover_requests: 200,
            soak_window_ms: 125,
            churn_cps: &[250, 1000],
            churn_conns: 400,
            conc_target: 1000,
            conc_probe: 300,
        }
    };
    let mix = MixRatios::default();
    let tail_n = 16u32;
    let batch_size = 4usize;
    let heavy_shape = 1.5f64;
    println!(
        "\n== load: open-loop serving benchmark (tier {}, {} workers, rates {:?} rps) ==",
        tier.name, tier.workers, tier.rates
    );

    let hosts: Vec<String> = HostProfile::all()
        .iter()
        .map(|p| p.name().to_string())
        .collect();
    let stream_seed = |label: &str| cfg.seed ^ fnv1a(label.as_bytes());
    let us = |ns: u64| ns as f64 / 1e3;

    // --- Phase 0: deterministic input fingerprints -> load_sweep.csv.
    // Everything in this file is a pure function of the seed; CI diffs
    // it byte-for-byte across --threads 1 and 4.
    let mut csv = String::from("phase,name,n,detail,fingerprint\n");
    let probe_rate = tier.rates[tier.rates.len() / 2];
    for dist in [
        InterArrival::poisson(probe_rate as f64),
        InterArrival::heavy_tail(probe_rate as f64, heavy_shape),
    ] {
        let sched = ArrivalSchedule::generate(dist, stream_seed(dist.label()), tier.n_open);
        let _ = writeln!(
            csv,
            "arrival,{},{},rate={probe_rate},{:#018x}",
            dist.label(),
            sched.len(),
            sched.fingerprint()
        );
    }
    {
        let mut stream = RequestStream::new(stream_seed("mix"), &hosts, mix, tail_n, batch_size);
        stream.take(tier.n_open);
        let detail = stream
            .counts()
            .iter()
            .map(|(kind, n)| format!("{}={n}", kind.label()))
            .collect::<Vec<_>>()
            .join(";");
        let _ = writeln!(
            csv,
            "mix,stream,{},{detail},{:#018x}",
            stream.drawn(),
            stream.fingerprint()
        );
    }
    let replay_k = 256usize;
    let replay_fp = {
        // A serialized replay: the exact response bytes for a mixed
        // request sequence against an identically warmed grid. Catches
        // any thread-count leak anywhere in sense -> store -> serve.
        let mut grid = nws_grid::GridMonitor::ucsd(cfg.seed);
        grid.run_steps(tier.warm_steps);
        let mut t = InMemoryTransport::new(Arc::new(Mutex::new(GridState::new(grid))));
        let mut stream = RequestStream::new(stream_seed("replay"), &hosts, mix, tail_n, batch_size);
        let mut fp = fnv1a(&[]);
        for _ in 0..replay_k {
            let (_, bytes) = t
                .call_raw(&stream.next_request())
                .expect("in-memory replay");
            let mut chained = fp.to_le_bytes().to_vec();
            chained.extend_from_slice(&bytes);
            fp = fnv1a(&chained);
        }
        let _ = writeln!(
            csv,
            "replay,in_memory,{replay_k},warm={},{fp:#018x}",
            tier.warm_steps
        );
        fp
    };

    // --- Phase 1: open-loop rate sweep over the transports. One
    // warmed grid behind the threaded TCP server, identically warmed
    // twins behind the epoll reactor and the in-memory transport.
    let socket_transports: &[&str] = match transport_axis {
        "threaded" => &["tcp"],
        "reactor" => &["reactor"],
        _ => &["tcp", "reactor"],
    };
    let mut sweep_transports: Vec<&str> = socket_transports.to_vec();
    sweep_transports.push("in_memory");
    let load_server_config = ServerConfig {
        // Generous: probe transports from consecutive search
        // iterations overlap while old sockets drain.
        max_connections: 64,
        ..ServerConfig::default()
    };
    let mut grid_tcp = nws_grid::GridMonitor::ucsd(cfg.seed);
    grid_tcp.run_steps(tier.warm_steps);
    let mut grid_mem = nws_grid::GridMonitor::ucsd(cfg.seed);
    grid_mem.run_steps(tier.warm_steps);
    let mut grid_reactor = nws_grid::GridMonitor::ucsd(cfg.seed);
    grid_reactor.run_steps(tier.warm_steps);
    let server =
        NwsServer::spawn(GridState::new(grid_tcp), load_server_config).expect("bind localhost");
    let addr = server.addr();
    let reactor_server = ReactorServer::spawn(
        GridState::new(grid_reactor),
        ReactorConfig {
            server: load_server_config,
            ..ReactorConfig::default()
        },
    )
    .expect("bind reactor");
    let raddr = reactor_server.addr();
    let mem_state = Arc::new(Mutex::new(GridState::new(grid_mem)));
    let connect_tcp = |_: usize| -> NwsClient {
        NwsClient::connect(addr, ClientConfig::default()).expect("connect load worker")
    };
    let connect_reactor = |_: usize| -> NwsClient {
        NwsClient::connect(raddr, ClientConfig::default()).expect("connect reactor worker")
    };
    let connect_mem = |_: usize| InMemoryTransport::new(Arc::clone(&mem_state));

    // Byte-identity pin: the phase-0 replay stream again, this time
    // through the reactor's sockets. The chained fingerprint must match
    // the in-memory row exactly — one wire image, whatever the
    // transport — and the row lands in the CSV, so CI's cross-thread
    // byte-diff also pins it across event-loop counts.
    {
        let mut t = connect_reactor(0);
        let mut stream = RequestStream::new(stream_seed("replay"), &hosts, mix, tail_n, batch_size);
        let mut fp = fnv1a(&[]);
        for _ in 0..replay_k {
            let (_, bytes) = t.call_raw(&stream.next_request()).expect("reactor replay");
            let mut chained = fp.to_le_bytes().to_vec();
            chained.extend_from_slice(&bytes);
            fp = fnv1a(&chained);
        }
        assert_eq!(
            fp, replay_fp,
            "reactor reply bytes diverge from the in-memory transport"
        );
        let _ = writeln!(
            csv,
            "replay,reactor,{replay_k},warm={},{fp:#018x}",
            tier.warm_steps
        );
    }

    let mut open_entries: Vec<String> = Vec::new();
    println!(
        "  open loop ({} requests/point, latency from virtual arrival):",
        tier.n_open
    );
    for transport in sweep_transports.iter().copied() {
        let mut dists: Vec<(u64, InterArrival)> = tier
            .rates
            .iter()
            .map(|&r| (r, InterArrival::poisson(r as f64)))
            .collect();
        dists.push((
            probe_rate,
            InterArrival::heavy_tail(probe_rate as f64, heavy_shape),
        ));
        for (rate, dist) in dists {
            let label = format!("{transport}_{}_{rate}", dist.label());
            let sched = ArrivalSchedule::generate(dist, stream_seed(dist.label()), tier.n_open);
            let mut stream =
                RequestStream::new(stream_seed(&label), &hosts, mix, tail_n, batch_size);
            let requests = stream.take(tier.n_open);
            let outcome = match transport {
                "tcp" => {
                    let transports: Vec<NwsClient> = (0..tier.workers).map(connect_tcp).collect();
                    open_loop(transports, &sched, &requests)
                }
                "reactor" => {
                    let transports: Vec<NwsClient> =
                        (0..tier.workers).map(connect_reactor).collect();
                    open_loop(transports, &sched, &requests)
                }
                _ => {
                    let transports: Vec<InMemoryTransport> =
                        (0..tier.workers).map(connect_mem).collect();
                    open_loop(transports, &sched, &requests)
                }
            };
            assert_eq!(outcome.errors, 0, "{label}: errors under load");
            assert_eq!(
                outcome.completed, tier.n_open as u64,
                "{label}: dropped requests"
            );
            let h = &outcome.hist;
            println!(
                "    {label:<28} offered {rate:>6} rps, achieved {:>8.0} rps, \
                 latency us: p50 {:>9.1} p99 {:>9.1} p999 {:>9.1} max {:>9.1}",
                outcome.achieved_rps(),
                us(h.p50()),
                us(h.p99()),
                us(h.p999()),
                us(h.max_ns()),
            );
            open_entries.push(format!(
                "    {{ \"transport\": \"{transport}\", \"dist\": \"{}\", \
                 \"offered_rps\": {rate}, \"requests\": {}, \
                 \"achieved_rps\": {:.1}, \"p50_us\": {:.2}, \"p99_us\": {:.2}, \
                 \"p999_us\": {:.2}, \"max_us\": {:.2} }}",
                dist.label(),
                outcome.completed,
                outcome.achieved_rps(),
                us(h.p50()),
                us(h.p99()),
                us(h.p999()),
                us(h.max_ns()),
            ));
            let _ = writeln!(
                csv,
                "open_loop,{label},{},sched={:#018x},{:#018x}",
                tier.n_open,
                sched.fingerprint(),
                stream.fingerprint()
            );
        }
    }

    // --- Phase 2: closed-loop comparison at the same mix. The
    // self-throttling baseline: the gap between these latencies and the
    // open-loop curve at a comparable achieved rate is the delay
    // coordinated omission used to hide.
    let n_closed = tier.workers * tier.n_closed_per_worker;
    let mut closed_entries: Vec<String> = Vec::new();
    println!("  closed loop ({n_closed} requests, latency from send):");
    for transport in sweep_transports.iter().copied() {
        let label = format!("closed_{transport}");
        let mut stream = RequestStream::new(stream_seed(&label), &hosts, mix, tail_n, batch_size);
        let requests = stream.take(n_closed);
        let outcome = match transport {
            "tcp" => {
                let transports: Vec<NwsClient> = (0..tier.workers).map(connect_tcp).collect();
                closed_loop(transports, &requests)
            }
            "reactor" => {
                let transports: Vec<NwsClient> = (0..tier.workers).map(connect_reactor).collect();
                closed_loop(transports, &requests)
            }
            _ => {
                let transports: Vec<InMemoryTransport> =
                    (0..tier.workers).map(connect_mem).collect();
                closed_loop(transports, &requests)
            }
        };
        assert_eq!(outcome.errors, 0, "{label}: errors under load");
        let h = &outcome.hist;
        println!(
            "    {label:<28} achieved {:>8.0} rps, latency us: p50 {:>9.1} \
             p99 {:>9.1} p999 {:>9.1} max {:>9.1}",
            outcome.achieved_rps(),
            us(h.p50()),
            us(h.p99()),
            us(h.p999()),
            us(h.max_ns()),
        );
        closed_entries.push(format!(
            "    {{ \"transport\": \"{transport}\", \"requests\": {}, \
             \"achieved_rps\": {:.1}, \"p50_us\": {:.2}, \"p99_us\": {:.2}, \
             \"p999_us\": {:.2}, \"max_us\": {:.2} }}",
            outcome.completed,
            outcome.achieved_rps(),
            us(h.p50()),
            us(h.p99()),
            us(h.p999()),
            us(h.max_ns()),
        ));
        let _ = writeln!(
            csv,
            "closed_loop,{transport},{n_closed},workers={},{:#018x}",
            tier.workers,
            stream.fingerprint()
        );
    }

    // --- Phase 3: max sustainable rate, geometric bisection under a
    // p99 cap. Rates probed depend on measured behavior, so this phase
    // reports to JSON/stdout only — nothing lands in the CSV.
    let search = RateSearch {
        lo_rps: 500.0,
        hi_rps: 131_072.0,
        iterations: tier.search_iters,
        requests: tier.search_n,
        p99_cap: Duration::from_millis(20),
        min_goodput: 0.9,
    };
    let mut search_entries: Vec<String> = Vec::new();
    println!(
        "  max sustainable rps (p99 cap {} ms, goodput floor {:.0}%):",
        search.p99_cap.as_millis(),
        search.min_goodput * 100.0
    );
    let mut best_by_transport: Vec<(&str, f64)> = Vec::new();
    for transport in sweep_transports.iter().copied() {
        let label = format!("search_{transport}");
        let mut stream = RequestStream::new(stream_seed(&label), &hosts, mix, tail_n, batch_size);
        let mut make_requests = |n: usize| stream.take(n);
        let (best, probes) = match transport {
            "tcp" => max_sustainable_rps(
                connect_tcp,
                tier.workers,
                cfg.seed,
                &mut make_requests,
                search,
            ),
            "reactor" => max_sustainable_rps(
                connect_reactor,
                tier.workers,
                cfg.seed,
                &mut make_requests,
                search,
            ),
            _ => max_sustainable_rps(
                connect_mem,
                tier.workers,
                cfg.seed,
                &mut make_requests,
                search,
            ),
        };
        best_by_transport.push((transport, best));
        let probe_json = probes
            .iter()
            .map(|p| {
                format!(
                    "{{ \"offered_rps\": {:.0}, \"achieved_rps\": {:.0}, \
                     \"p99_us\": {:.1}, \"sustainable\": {} }}",
                    p.offered_rps,
                    p.achieved_rps,
                    us(p.p99_ns),
                    p.sustainable
                )
            })
            .collect::<Vec<_>>()
            .join(", ");
        println!(
            "    {transport:<10} {best:>8.0} rps sustained ({} probes)",
            probes.len()
        );
        search_entries.push(format!(
            "    {{ \"transport\": \"{transport}\", \"best_rps\": {best:.0}, \
             \"probes\": [{probe_json}] }}"
        ));
    }
    if let (Some(&(_, threaded_best)), Some(&(_, reactor_best))) = (
        best_by_transport.iter().find(|(t, _)| *t == "tcp"),
        best_by_transport.iter().find(|(t, _)| *t == "reactor"),
    ) {
        println!(
            "    reactor/threaded sustainable-rate ratio: {:.2}x",
            reactor_best / threaded_best.max(1.0)
        );
    }

    // --- Phase 4: sustained soak. The same open-loop discipline, but
    // every latency lands in a fixed time window keyed by its virtual
    // arrival, producing a p50/p99 series over time. Window populations
    // are a pure function of the schedule, so the partition row is
    // deterministic and lands in the cross-thread CSV diff; the
    // measured per-window `soak_series` rows are the one CSV exception
    // and CI filters them by prefix.
    let soak_n = tier.n_open * 2;
    let soak_rate = probe_rate;
    let soak_window = Duration::from_millis(tier.soak_window_ms);
    let mut soak_entries: Vec<String> = Vec::new();
    println!(
        "  soak ({soak_n} requests at {soak_rate} rps, {} ms windows):",
        tier.soak_window_ms
    );
    for transport in sweep_transports.iter().copied() {
        let label = format!("soak_{transport}");
        let sched = ArrivalSchedule::generate(
            InterArrival::poisson(soak_rate as f64),
            stream_seed(&label),
            soak_n,
        );
        let mut stream = RequestStream::new(stream_seed(&label), &hosts, mix, tail_n, batch_size);
        let requests = stream.take(soak_n);
        let outcome = match transport {
            "tcp" => {
                let transports: Vec<NwsClient> = (0..tier.workers).map(connect_tcp).collect();
                soak(transports, &sched, &requests, soak_window)
            }
            "reactor" => {
                let transports: Vec<NwsClient> = (0..tier.workers).map(connect_reactor).collect();
                soak(transports, &sched, &requests, soak_window)
            }
            _ => {
                let transports: Vec<InMemoryTransport> =
                    (0..tier.workers).map(connect_mem).collect();
                soak(transports, &sched, &requests, soak_window)
            }
        };
        assert_eq!(outcome.errors, 0, "{label}: errors under soak");
        assert_eq!(
            outcome.completed, soak_n as u64,
            "{label}: dropped requests"
        );
        println!(
            "    {label:<28} {} windows, whole-run p50 {:>9.1} us p99 {:>9.1} us",
            outcome.windows.len(),
            us(outcome.hist.p50()),
            us(outcome.hist.p99()),
        );
        let _ = writeln!(
            csv,
            "soak,{label},{soak_n},window_ms={};windows={},{:#018x}",
            tier.soak_window_ms,
            outcome.windows.len(),
            sched.fingerprint()
        );
        for w in &outcome.windows {
            let _ = writeln!(
                csv,
                "soak_series,{label}_w{},{},p50_us={:.1};p99_us={:.1};errors={},-",
                w.index,
                w.completed,
                us(w.hist.p50()),
                us(w.hist.p99()),
                w.errors
            );
        }
        let windows_json = outcome
            .windows
            .iter()
            .map(|w| {
                format!(
                    "{{ \"index\": {}, \"completed\": {}, \"p50_us\": {:.2}, \"p99_us\": {:.2} }}",
                    w.index,
                    w.completed,
                    us(w.hist.p50()),
                    us(w.hist.p99())
                )
            })
            .collect::<Vec<_>>()
            .join(", ");
        soak_entries.push(format!(
            "    {{ \"transport\": \"{transport}\", \"requests\": {soak_n}, \
             \"offered_rps\": {soak_rate}, \"window_ms\": {}, \"p50_us\": {:.2}, \
             \"p99_us\": {:.2}, \"windows\": [{windows_json}] }}",
            tier.soak_window_ms,
            us(outcome.hist.p50()),
            us(outcome.hist.p99()),
        ));
    }

    // --- Phase 5: connection churn. Requests/second holds a fixed set
    // of connections open; this sweeps the *other* axis, connects per
    // second, because accept-path work (socket setup, admission,
    // reactor registration) happens per connection. Arrivals are
    // open-loop from a seeded schedule; each connection asks a short
    // burst and hangs up.
    let churn_per_conn = 4usize;
    let mut churn_entries: Vec<String> = Vec::new();
    println!(
        "  connection churn ({} arrivals/point, {churn_per_conn} requests/connection):",
        tier.churn_conns
    );
    for transport in socket_transports.iter().copied() {
        for &cps in tier.churn_cps {
            let label = format!("churn_{transport}_{cps}");
            let sched = ArrivalSchedule::generate(
                InterArrival::poisson(cps as f64),
                stream_seed(&label),
                tier.churn_conns,
            );
            let mut stream =
                RequestStream::new(stream_seed(&label), &hosts, mix, tail_n, batch_size);
            let pool = stream.take(tier.churn_conns * churn_per_conn);
            let outcome = match transport {
                "tcp" => churn(
                    &|_| match NwsClient::connect(addr, ClientConfig::default()) {
                        Ok(c) => ChurnConnect::Serve(c),
                        Err(_) => ChurnConnect::Failed,
                    },
                    tier.workers,
                    &sched,
                    &pool,
                    churn_per_conn,
                ),
                _ => churn(
                    &|_| match NwsClient::connect(raddr, ClientConfig::default()) {
                        Ok(c) => ChurnConnect::Serve(c),
                        Err(_) => ChurnConnect::Failed,
                    },
                    tier.workers,
                    &sched,
                    &pool,
                    churn_per_conn,
                ),
            };
            assert_eq!(outcome.attempted, tier.churn_conns as u64);
            assert_eq!(outcome.failed, 0, "{label}: socket-level failures");
            assert_eq!(outcome.errors, 0, "{label}: typed errors mid-burst");
            assert_eq!(
                outcome.served + outcome.refused,
                tier.churn_conns as u64,
                "{label}: every arrival served or refused"
            );
            println!(
                "    {label:<28} offered {cps:>5} cps, achieved {:>7.0} cps, \
                 served {}, refused {}, first-reply us: p50 {:>9.1} p99 {:>9.1}",
                outcome.achieved_cps(),
                outcome.served,
                outcome.refused,
                us(outcome.first_reply.p50()),
                us(outcome.first_reply.p99()),
            );
            let _ = writeln!(
                csv,
                "churn,{label},{},cps={cps};per_conn={churn_per_conn},{:#018x}",
                tier.churn_conns,
                sched.fingerprint()
            );
            churn_entries.push(format!(
                "    {{ \"transport\": \"{transport}\", \"offered_cps\": {cps}, \
                 \"connections\": {}, \"served\": {}, \"refused\": {}, \
                 \"achieved_cps\": {:.1}, \"first_reply_p50_us\": {:.2}, \
                 \"first_reply_p99_us\": {:.2}, \"request_p99_us\": {:.2} }}",
                tier.churn_conns,
                outcome.served,
                outcome.refused,
                outcome.achieved_cps(),
                us(outcome.first_reply.p50()),
                us(outcome.first_reply.p99()),
                us(outcome.requests.p99()),
            ));
        }
    }
    drop(server);
    drop(reactor_server);

    // --- Phase 6: idle-connection capacity. The threaded server
    // spends a thread per connection, so its cap is the thread budget;
    // the reactor spends a slab slot. Hold the target number of idle
    // connections open on the reactor and probe request latency at
    // milestones along the way — the series is the p99-versus-
    // connection-count curve. Values depend on the machine and thread
    // count, so this phase reports to JSON/stdout only.
    println!(
        "  idle-connection capacity (target {} connections):",
        tier.conc_target
    );
    let mut conc_grid = nws_grid::GridMonitor::ucsd(cfg.seed);
    conc_grid.run_steps(tier.warm_steps.min(120));
    let threaded_cap = ServerConfig::default().max_connections;
    let threaded_small = NwsServer::spawn(GridState::new(conc_grid), ServerConfig::default())
        .expect("bind threaded cap probe");
    let mut threaded_refused_at = 0usize;
    let mut held_threaded: Vec<NwsClient> = Vec::new();
    for i in 0..threaded_cap + 24 {
        let mut c = NwsClient::connect(threaded_small.addr(), ClientConfig::default())
            .expect("connect threaded probe");
        match Transport::call(&mut c, &Request::Stats) {
            Ok(Response::Error(e)) if e.code == ErrorCode::Overloaded => {
                threaded_refused_at = i + 1;
                break;
            }
            Ok(_) => held_threaded.push(c),
            Err(_) => {
                threaded_refused_at = i + 1;
                break;
            }
        }
    }
    assert!(
        threaded_refused_at > 0,
        "threaded server never refused within cap+24 connections"
    );
    println!("    threaded (cap {threaded_cap}): refused connection #{threaded_refused_at}");
    drop(held_threaded);
    drop(threaded_small);
    let mut conc_grid = nws_grid::GridMonitor::ucsd(cfg.seed);
    conc_grid.run_steps(tier.warm_steps.min(120));
    let conc_server = ReactorServer::spawn(
        GridState::new(conc_grid),
        ReactorConfig {
            server: ServerConfig {
                max_connections: tier.conc_target + 64,
                // Held connections sit idle between probes; keep the
                // idle cut well past the phase's runtime.
                read_timeout: Duration::from_secs(60),
                request_deadline: Duration::from_secs(120),
                ..ServerConfig::default()
            },
            ..ReactorConfig::default()
        },
    )
    .expect("bind reactor capacity server");
    let caddr = conc_server.addr();
    let milestones = [
        tier.conc_target / 10,
        tier.conc_target / 2,
        tier.conc_target,
    ];
    let mut held: Vec<NwsClient> = Vec::with_capacity(tier.conc_target);
    let mut conc_points: Vec<String> = Vec::new();
    for &m in &milestones {
        while held.len() < m {
            let mut c =
                NwsClient::connect(caddr, ClientConfig::default()).expect("connect idle client");
            let resp = Transport::call(&mut c, &Request::Stats).expect("stats on new connection");
            assert!(
                !matches!(resp, Response::Error(_)),
                "reactor refused connection #{} below its cap: {resp:?}",
                held.len() + 1
            );
            held.push(c);
        }
        let mut hist = LatencyHistogram::new();
        let probe = &mut held[0];
        for _ in 0..tier.conc_probe {
            let t0 = Instant::now();
            let resp = Transport::call(probe, &Request::Stats).expect("probe stats");
            assert!(!matches!(resp, Response::Error(_)), "probe got typed error");
            hist.record(t0.elapsed());
        }
        println!(
            "    reactor: {m:>5} idle connections held, probe p50 {:>7.1} us p99 {:>7.1} us",
            us(hist.p50()),
            us(hist.p99()),
        );
        conc_points.push(format!(
            "{{ \"connections\": {m}, \"p50_us\": {:.2}, \"p99_us\": {:.2} }}",
            us(hist.p50()),
            us(hist.p99())
        ));
    }
    assert_eq!(
        held.len(),
        tier.conc_target,
        "reactor held the full connection target"
    );
    let conc_active = conc_server.active_connections();
    drop(held);
    drop(conc_server);

    // --- Phase 7: adversarial personas against a tight-deadline
    // server, with a healthy client exchanging throughout. Every
    // defense must trip, promptly, without collateral damage.
    let mut persona_grid = nws_grid::GridMonitor::ucsd(cfg.seed);
    persona_grid.run_steps(40);
    let persona_server = NwsServer::spawn(
        GridState::new(persona_grid),
        ServerConfig {
            read_timeout: Duration::from_millis(250),
            request_deadline: Duration::from_millis(450),
            max_connections: 8,
            ..ServerConfig::default()
        },
    )
    .expect("bind persona server");
    let paddr = persona_server.addr();
    let patience = Duration::from_secs(5);
    let mut stats_frame = Vec::new();
    nws_wire::encode_request_frame(&mut stats_frame, &Request::Stats);
    let attackers = std::thread::spawn(move || {
        let partial = std::thread::spawn(move || personas::partial_frame(paddr, patience));
        let oversize = std::thread::spawn(move || personas::oversize_claim(paddr, patience));
        let slow = std::thread::spawn(move || {
            personas::slow_writer(paddr, &stats_frame, Duration::from_millis(75), patience)
        });
        [
            partial.join().expect("partial_frame"),
            oversize.join().expect("oversize_claim"),
            slow.join().expect("slow_writer"),
        ]
    });
    let mut healthy = NwsClient::connect(paddr, ClientConfig::default()).expect("connect healthy");
    let mut healthy_calls = 0u64;
    for _ in 0..25 {
        healthy.stats().expect("healthy call during attack");
        healthy_calls += 1;
        std::thread::sleep(Duration::from_millis(20));
    }
    let reports = attackers.join().expect("attacker thread");
    let mut persona_detail = Vec::new();
    for report in &reports {
        let report = report.as_ref().expect("persona io");
        assert!(
            report.tripped,
            "{} did not trip the server: {}",
            report.name, report.detail
        );
        println!(
            "  persona {:<16} tripped in {:>6.0} ms",
            report.name,
            report.elapsed.as_secs_f64() * 1e3
        );
        persona_detail.push(format!("{}=1", report.name));
    }
    healthy.stats().expect("healthy call after attack");
    let persona_detail = persona_detail.join(";");
    let _ = writeln!(
        csv,
        "personas,defenses,{},{persona_detail},{:#018x}",
        reports.len(),
        fnv1a(persona_detail.as_bytes())
    );
    drop(persona_server);

    // --- Phase 8: the failover phase. Mix-driven load through a
    // FailoverClient over primary + replica while a seeded CrashPlan
    // picks the kill moment. Availability must hold at 100%.
    let requests = tier.failover_requests;
    let mut gm = nws_grid::GridMonitor::ucsd(cfg.seed);
    gm.attach_journal(Wal::new());
    gm.run_steps(tier.warm_steps.min(120));
    let host_refs: Vec<&str> = HostProfile::all().iter().map(|p| p.name()).collect();
    let mut primary = NwsServer::spawn(
        GridState::new(gm),
        ServerConfig {
            max_connections: 8,
            ..ServerConfig::default()
        },
    )
    .expect("bind primary");
    let mut feed = NwsClient::connect(primary.addr(), ClientConfig::default()).expect("connect");
    let mut replica = ReplicaState::new(&host_refs, GridMonitorConfig::default());
    replica.sync(&mut feed).expect("replicate over tcp");
    drop(feed);
    assert!(replica.synced(), "replica caught up to the primary");
    let replica_server = NwsServer::spawn(
        replica,
        ServerConfig {
            max_connections: 8,
            ..ServerConfig::default()
        },
    )
    .expect("bind replica");
    let mut client = FailoverClient::new(
        &[primary.addr(), replica_server.addr()],
        ClientConfig {
            io_timeout: Duration::from_millis(500),
            retries: 0,
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(5),
            ..ClientConfig::default()
        },
    );
    let kill_at = CrashPlan::seeded(cfg.seed ^ 0x10AD)
        .next_event()
        .cut_at(requests)
        .clamp(1, requests - 1);
    let mut stream = RequestStream::new(stream_seed("failover"), &hosts, mix, tail_n, batch_size);
    let failover_requests = stream.take(requests);
    let mut hist = LatencyHistogram::new();
    let mut served = 0usize;
    let mut post_kill_ms = 0.0f64;
    for (i, req) in failover_requests.iter().enumerate() {
        if i == kill_at {
            primary.shutdown();
        }
        let t0 = Instant::now();
        let resp = client.call(req).expect("every request is served");
        assert!(
            !matches!(resp, Response::Error(_)),
            "typed error through failover: {resp:?}"
        );
        let elapsed = t0.elapsed();
        if i == kill_at {
            post_kill_ms = elapsed.as_secs_f64() * 1e3;
        }
        hist.record(elapsed);
        served += 1;
    }
    assert_eq!(served, requests, "availability through the kill is 100%");
    assert!(client.failovers() >= 1, "the kill forced a failover");
    println!(
        "  failover: kill at request {kill_at}/{requests}, served {served}/{requests} \
         ({} failover(s)); first post-kill {post_kill_ms:.2} ms, p50 {:.1} us, p99 {:.1} us",
        client.failovers(),
        us(hist.p50()),
        us(hist.p99()),
    );
    let _ = writeln!(
        csv,
        "failover,primary_kill,{requests},kill_at={kill_at};served={served},{:#018x}",
        stream.fingerprint()
    );

    write_artifact("load_sweep.csv", &csv);

    // The serving baseline is tracked in version control, so like
    // BENCH_perf.json it lands at the repository root.
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"schema_version\": 1,");
    let _ = writeln!(json, "  \"tier\": \"{}\",", tier.name);
    let _ = writeln!(json, "  \"threads\": {},", nws_runtime::threads());
    let _ = writeln!(json, "  \"workers\": {},", tier.workers);
    let _ = writeln!(
        json,
        "  \"mix\": {{ \"forecast\": {}, \"snapshot\": {}, \"best_host\": {}, \
         \"series_tail\": {}, \"batch\": {}, \"tail_n\": {tail_n}, \
         \"batch_size\": {batch_size} }},",
        mix.forecast, mix.snapshot, mix.best_host, mix.series_tail, mix.batch
    );
    let _ = writeln!(
        json,
        "  \"open_loop\": [\n{}\n  ],",
        open_entries.join(",\n")
    );
    let _ = writeln!(
        json,
        "  \"closed_loop\": [\n{}\n  ],",
        closed_entries.join(",\n")
    );
    let _ = writeln!(
        json,
        "  \"max_sustainable_rps\": [\n{}\n  ],",
        search_entries.join(",\n")
    );
    let _ = writeln!(json, "  \"soak\": [\n{}\n  ],", soak_entries.join(",\n"));
    let _ = writeln!(json, "  \"churn\": [\n{}\n  ],", churn_entries.join(",\n"));
    let _ = writeln!(
        json,
        "  \"concurrency\": {{ \"threaded_cap\": {threaded_cap}, \
         \"threaded_refused_at\": {threaded_refused_at}, \"reactor_held\": {}, \
         \"reactor_active\": {conc_active}, \"points\": [{}] }},",
        tier.conc_target,
        conc_points.join(", ")
    );
    let _ = writeln!(
        json,
        "  \"personas\": {{ \"count\": {}, \"tripped\": {}, \"healthy_calls\": {healthy_calls} }},",
        reports.len(),
        reports.len()
    );
    let _ = writeln!(
        json,
        "  \"failover\": {{ \"requests\": {requests}, \"kill_at\": {kill_at}, \
         \"served\": {served}, \"failovers\": {}, \"post_kill_ms\": {post_kill_ms:.3}, \
         \"p50_us\": {:.2}, \"p99_us\": {:.2} }}",
        client.failovers(),
        us(hist.p50()),
        us(hist.p99())
    );
    json.push_str("}\n");
    match std::fs::write("BENCH_serve.json", &json) {
        Ok(()) => eprintln!("wrote BENCH_serve.json"),
        Err(e) => eprintln!("warning: cannot write BENCH_serve.json: {e}"),
    }
}

/// The `serve` experiment: spins up the forecast-serving subsystem on a
/// warmed simulated grid, first proving the TCP path answers byte-for-byte
/// identically to the in-memory transport, then driving a seeded
/// closed-loop load phase and reporting throughput, latency percentiles,
/// and query-cache effectiveness to `BENCH_serve.json`.
fn run_serve(cfg: &ExperimentConfig, quick: bool, smoke: bool) {
    use nws_server::{
        ClientConfig, GridState, InMemoryTransport, NwsClient, NwsServer, ServerConfig, TickDriver,
        Transport,
    };
    use nws_wire::{Request, Response};
    use std::sync::{Arc, Mutex};
    use std::time::Instant;

    let (warm_steps, rounds, clients, reqs_per_client) = if smoke {
        (60u64, 3usize, 2usize, 50usize)
    } else if quick {
        (180, 6, 4, 250)
    } else {
        (360, 10, 6, 1000)
    };

    println!(
        "\nserve: forecast-serving subsystem ({clients} clients x {rounds} rounds x \
         {reqs_per_client} requests, grid warmed {warm_steps} slots)"
    );

    // --- Phase 1: the TCP path must be byte-identical to the in-memory
    // transport. Two identically-seeded grids, one behind each transport,
    // answer the same request sequence; every response payload is
    // compared byte for byte (Stats counters included, so the sequence
    // runs strictly in order on both sides).
    let mut grid_a = nws_grid::GridMonitor::ucsd(cfg.seed);
    grid_a.run_steps(warm_steps);
    let mut grid_b = nws_grid::GridMonitor::ucsd(cfg.seed);
    grid_b.run_steps(warm_steps);
    let hosts: Vec<String> = grid_a
        .snapshot()
        .hosts
        .iter()
        .map(|h| h.host.clone())
        .collect();

    let mut server = NwsServer::spawn(
        GridState::new(grid_a),
        ServerConfig {
            max_connections: clients + 1,
            ..ServerConfig::default()
        },
    )
    .expect("bind localhost");
    let mut mem = InMemoryTransport::new(Arc::new(Mutex::new(GridState::new(grid_b))));
    let mut tcp = NwsClient::connect(server.addr(), ClientConfig::default()).expect("connect");

    // Sensor ticks come from engine-clocked drivers, not from the serve
    // loop: each driver watches a virtual clock on the grid's cadence and
    // delivers exactly the slots that come due between request rounds.
    let mut tcp_driver = TickDriver::virtual_time(Arc::clone(server.state()));
    let mut mem_driver = TickDriver::virtual_time(Arc::clone(mem.state()));
    let slot_seconds = tcp_driver
        .state()
        .lock()
        .expect("state")
        .grid()
        .cadence()
        .measurement_period;

    let mut sequence: Vec<Request> = vec![Request::Snapshot, Request::BestHost];
    for h in &hosts {
        sequence.push(Request::Forecast { host: h.clone() });
        sequence.push(Request::SeriesTail {
            host: h.clone(),
            n: 32,
        });
    }
    sequence.push(Request::Batch(
        hosts
            .iter()
            .map(|h| Request::Forecast { host: h.clone() })
            .collect(),
    ));
    sequence.push(Request::Stats);

    let mut compared = 0usize;
    for pass in 0..2 {
        for req in &sequence {
            let (_, tcp_bytes) = tcp.call_raw(req).expect("tcp call");
            let (_, mem_bytes) = mem.call_raw(req).expect("in-memory call");
            assert_eq!(
                tcp_bytes, mem_bytes,
                "TCP and in-memory responses diverged on {req:?} (pass {pass})"
            );
            compared += 1;
        }
        // Advance both clocks one measurement period between passes so
        // the comparison also covers the invalidate-and-recompute path.
        assert_eq!(tcp_driver.advance(slot_seconds), 1);
        assert_eq!(mem_driver.advance(slot_seconds), 1);
    }
    println!("  verified: {compared} responses byte-identical across TCP and in-memory");

    // --- Phase 2: seeded closed-loop load. Each client thread replays a
    // deterministic LCG-driven request mix; the grid ticks one sensor
    // slot between rounds so the cache sees realistic invalidation.
    let mut latencies_ms: Vec<f64> = Vec::new();
    let mut total_requests = 0usize;
    let load_t0 = Instant::now();
    for round in 0..rounds {
        let mut handles = Vec::new();
        for c in 0..clients {
            let addr = server.addr();
            let hosts = hosts.clone();
            let mut lcg: u64 = cfg
                .seed
                .wrapping_add(0x5E17_0001)
                .wrapping_mul(round as u64 + 1)
                .wrapping_add(c as u64);
            handles.push(std::thread::spawn(move || {
                let mut client =
                    NwsClient::connect(addr, ClientConfig::default()).expect("connect");
                let mut lat = Vec::with_capacity(reqs_per_client);
                for _ in 0..reqs_per_client {
                    lcg = lcg
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    let roll = (lcg >> 33) % 100;
                    let host = hosts[(lcg >> 17) as usize % hosts.len()].clone();
                    let req = if roll < 70 {
                        Request::Forecast { host }
                    } else if roll < 85 {
                        Request::Snapshot
                    } else if roll < 95 {
                        Request::BestHost
                    } else {
                        Request::SeriesTail { host, n: 16 }
                    };
                    let t0 = Instant::now();
                    match client.call(&req).expect("load request") {
                        Response::Error(e) => panic!("server error under load: {}", e.message),
                        _ => lat.push(t0.elapsed().as_secs_f64() * 1e3),
                    }
                }
                lat
            }));
        }
        for h in handles {
            let lat = h.join().expect("client thread");
            total_requests += lat.len();
            latencies_ms.extend(lat);
        }
        tcp_driver.advance(slot_seconds);
    }
    let elapsed_s = load_t0.elapsed().as_secs_f64();

    let stats = tcp.stats().expect("final stats");
    server.shutdown();

    latencies_ms.sort_by(|a, b| a.total_cmp(b));
    let pct = |p: f64| -> f64 {
        if latencies_ms.is_empty() {
            return 0.0;
        }
        let idx = ((latencies_ms.len() as f64 - 1.0) * p).round() as usize;
        latencies_ms[idx]
    };
    let (p50, p95, p99) = (pct(0.50), pct(0.95), pct(0.99));
    let max_ms = latencies_ms.last().copied().unwrap_or(0.0);
    let throughput = total_requests as f64 / elapsed_s.max(1e-9);
    let lookups = stats.cache_hits + stats.cache_misses;
    let hit_rate = if lookups > 0 {
        stats.cache_hits as f64 / lookups as f64
    } else {
        0.0
    };
    assert!(hit_rate > 0.0, "query cache never hit under repeated load");

    println!("  load: {total_requests} requests in {elapsed_s:.3} s = {throughput:.0} req/s");
    println!("  latency ms: p50 {p50:.3}  p95 {p95:.3}  p99 {p99:.3}  max {max_ms:.3}");
    println!(
        "  cache: {} hits / {} misses / {} invalidations (hit rate {:.1}%)",
        stats.cache_hits,
        stats.cache_misses,
        stats.invalidations,
        hit_rate * 100.0
    );

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"threads\": {},", nws_runtime::threads());
    let _ = writeln!(json, "  \"clients\": {clients},");
    let _ = writeln!(json, "  \"rounds\": {rounds},");
    let _ = writeln!(json, "  \"warm_steps\": {warm_steps},");
    let _ = writeln!(json, "  \"verified_responses\": {compared},");
    let _ = writeln!(json, "  \"requests\": {total_requests},");
    let _ = writeln!(json, "  \"elapsed_s\": {elapsed_s:.6},");
    let _ = writeln!(json, "  \"throughput_rps\": {throughput:.3},");
    let _ = writeln!(
        json,
        "  \"latency_ms\": {{ \"p50\": {p50:.4}, \"p95\": {p95:.4}, \"p99\": {p99:.4}, \"max\": {max_ms:.4} }},"
    );
    let _ = writeln!(
        json,
        "  \"cache\": {{ \"hits\": {}, \"misses\": {}, \"invalidations\": {}, \"hit_rate\": {:.4} }}",
        stats.cache_hits, stats.cache_misses, stats.invalidations, hit_rate
    );
    json.push_str("}\n");
    write_artifact("BENCH_serve.json", &json);
    eprintln!("wrote BENCH_serve.json");
}

fn run_loadstats(cfg: &ExperimentConfig) {
    println!("\nHost-load statistics (Dinda-O'Halloran style, raw 1-min load average)");
    println!(
        "{:<11} {:>6} {:>6} {:>6} {:>6} | {:>6} {:>6} {:>6} {:>6} | {:>5} {:>5} {:>5}",
        "host",
        "mean",
        "std",
        "max",
        "med",
        "r(1)",
        "r(6)",
        "r(30)",
        "r(360)",
        "H_rs",
        "H_av",
        "H_pg"
    );
    let mut csv = String::from(
        "host,n,mean,std,max,median,acf_10s,acf_1m,acf_5m,acf_1h,hurst_rs,hurst_av,hurst_pg\n",
    );
    for r in load_statistics(cfg) {
        println!(
            "{:<11} {:>6.2} {:>6.2} {:>6.2} {:>6.2} | {:>6.2} {:>6.2} {:>6.2} {:>6.2} | {:>5.2} {:>5.2} {:>5.2}",
            r.host, r.mean, r.std_dev, r.max, r.median,
            r.acf[0], r.acf[1], r.acf[2], r.acf[3],
            r.hurst.0, r.hurst.1, r.hurst.2
        );
        let _ = writeln!(
            csv,
            "{},{},{},{},{},{},{},{},{},{},{},{},{}",
            r.host,
            r.n,
            r.mean,
            r.std_dev,
            r.max,
            r.median,
            r.acf[0],
            r.acf[1],
            r.acf[2],
            r.acf[3],
            r.hurst.0,
            r.hurst.1,
            r.hurst.2
        );
    }
    write_artifact("loadstats.csv", &csv);
}

/// The `faults` experiment: sweeps fault intensity over the six-host grid
/// and reports how the measurement path degrades — gap fraction, forecast
/// error on the surviving hybrid series, divergence from the fault-free
/// run (matched by timestamp), and degraded-mode reporting at the end.
fn run_faults(cfg: &ExperimentConfig, quick: bool, smoke: bool) {
    use nws_faults::{FaultPlan, FaultRates};
    use nws_forecast::{evaluate_one_step, NwsForecaster};
    use nws_grid::{GridMonitor, Metric};
    use std::collections::BTreeMap;

    let steps: u64 = if smoke {
        180 // half an hour
    } else if quick {
        360 // one hour
    } else {
        2160 // six hours
    };
    let rates: &[f64] = if quick {
        &[0.0, 0.05, 0.2]
    } else {
        &[0.0, 0.02, 0.05, 0.1, 0.2]
    };
    let profiles = HostProfile::all();
    println!(
        "\nFault-injection sweep: {} hosts, {} slots ({} simulated minutes) per intensity",
        profiles.len(),
        steps,
        steps * 10 / 60
    );
    println!(
        "{:>6} {:>9} {:>7} {:>7} {:>8} {:>8} {:>9} {:>9} {:>9} {:>5}",
        "rate",
        "delivered",
        "gaps",
        "reboot",
        "late ok",
        "late x",
        "mae",
        "diverge",
        "conf",
        "degr"
    );
    let mut csv = String::from(
        "fault_rate,slots,delivered,gaps,gap_fraction,outage_slots,reboots,\
         probe_attempts_failed,probes_abandoned,fallback_cross,delayed,\
         late_delivered,late_dropped,hybrid_mae,divergence_vs_clean,\
         mean_confidence,degraded_hosts\n",
    );
    // Fault-free reference: hybrid series keyed by timestamp bits, used to
    // measure how far faulted runs drift on the slots both still measured.
    let mut clean: Vec<BTreeMap<u64, f64>> = Vec::new();
    for &rate in rates {
        let mut gm = GridMonitor::with_faults(
            &profiles,
            cfg.seed,
            nws_grid::GridMonitorConfig::default(),
            FaultPlan::seeded(cfg.seed ^ 0xFA17, FaultRates::uniform(rate)),
        );
        gm.run_steps(steps);
        let stats = gm.fault_stats();
        let (mut mae_sum, mut mae_n) = (0.0, 0u32);
        let (mut div_sum, mut div_n) = (0.0, 0u64);
        let mut series_maps: Vec<BTreeMap<u64, f64>> = Vec::new();
        for (i, p) in profiles.iter().enumerate() {
            let id = gm
                .registry()
                .lookup(p.name(), Metric::CpuAvailabilityHybrid)
                .expect("registered");
            let (values, map): (Vec<f64>, BTreeMap<u64, f64>) =
                gm.memory().with_series(id, |times, vals| {
                    (
                        vals.to_vec(),
                        times
                            .iter()
                            .zip(vals)
                            .map(|(t, v)| (t.to_bits(), *v))
                            .collect(),
                    )
                });
            if let Some(r) = evaluate_one_step(&mut NwsForecaster::nws_default(), &values) {
                mae_sum += r.mae;
                mae_n += 1;
            }
            if let Some(c) = clean.get(i) {
                for (t, v) in &map {
                    if let Some(cv) = c.get(t) {
                        div_sum += (v - cv).abs();
                        div_n += 1;
                    }
                }
            }
            series_maps.push(map);
        }
        if clean.is_empty() {
            clean = series_maps;
        }
        let snap = gm.snapshot();
        let degraded = snap.hosts.iter().filter(|h| h.degraded).count();
        let (conf_sum, conf_n) = snap
            .hosts
            .iter()
            .filter_map(|h| h.forecast.as_ref())
            .fold((0.0, 0u32), |(s, n), a| (s + a.confidence, n + 1));
        let mae = mae_sum / f64::from(mae_n.max(1));
        let divergence = if div_n > 0 {
            div_sum / div_n as f64
        } else {
            0.0
        };
        let confidence = conf_sum / f64::from(conf_n.max(1));
        let gap_fraction = stats.gaps as f64 / (stats.slots * 4) as f64;
        println!(
            "{:>6.2} {:>9} {:>7} {:>7} {:>8} {:>8} {:>8.1}% {:>8.3} {:>9.2} {:>5}",
            rate,
            stats.delivered,
            stats.gaps,
            stats.reboots,
            stats.late_delivered,
            stats.late_dropped,
            mae * 100.0,
            divergence,
            confidence,
            degraded
        );
        let _ = writeln!(
            csv,
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
            rate,
            stats.slots,
            stats.delivered,
            stats.gaps,
            gap_fraction,
            stats.outage_slots,
            stats.reboots,
            stats.probe_attempts_failed,
            stats.probes_abandoned,
            stats.fallback_cross,
            stats.delayed,
            stats.late_delivered,
            stats.late_dropped,
            mae,
            divergence,
            confidence,
            degraded
        );
    }
    write_artifact("faults_sweep.csv", &csv);
}

fn run_data_sched(cfg: &ExperimentConfig) {
    println!(
        "
Data-aware scheduling: staging time vs compute time (AppLeS formulation)"
    );
    let dcfg = DataSchedConfig::demo(cfg.seed);
    println!(
        "  {} tasks, 128-256 MB inputs; site 0 = idle host behind congested WAN",
        dcfg.tasks.len()
    );
    let outcomes = run_data_sched_experiment(&dcfg);
    let best = outcomes
        .iter()
        .map(|o| o.makespan)
        .fold(f64::INFINITY, f64::min);
    let mut csv = String::from(
        "policy,makespan_s,slowdown_vs_best,tasks_site0,tasks_site1,tasks_site2
",
    );
    for o in &outcomes {
        println!(
            "  {:<15} makespan {:>7.0}s  (x{:.2} vs best)  tasks/site {:?}",
            o.policy.name(),
            o.makespan,
            o.makespan / best,
            o.tasks_per_site
        );
        let _ = writeln!(
            csv,
            "{},{},{},{},{},{}",
            o.policy.name(),
            o.makespan,
            o.makespan / best,
            o.tasks_per_site[0],
            o.tasks_per_site[1],
            o.tasks_per_site[2]
        );
    }
    write_artifact("sched_data_aware.csv", &csv);
}

fn run_net(cfg: &ExperimentConfig) {
    println!(
        "
Network weather: bandwidth/latency sensing + forecasting (8 h, 2-min probes)"
    );
    let mut monitor = LinkMonitor::demo_grid(cfg.seed);
    monitor.run_probes(240);
    let mut csv = String::from(
        "link,mean_bandwidth_Bps,mean_latency_s,bandwidth_forecast_mae
",
    );
    for r in monitor.report() {
        println!(
            "  {:<11} mean bw {:>6.2} Mbit/s  rtt {:>5.0} ms  1-step MAE {:>5.1}%",
            r.name,
            r.mean_bandwidth * 8.0 / 1e6,
            r.mean_latency * 1000.0,
            r.bandwidth_forecast_mae * 100.0
        );
        let _ = writeln!(
            csv,
            "{},{},{},{}",
            r.name, r.mean_bandwidth, r.mean_latency, r.bandwidth_forecast_mae
        );
    }
    write_artifact("net_links.csv", &csv);
}

fn run_sweeps(cfg: &ExperimentConfig) {
    let out = sweep_dataset(cfg, HostProfile::Thing2);

    println!(
        "
Extension: one-step error vs aggregation level (thing2)"
    );
    println!(
        "{:>6} {:>8} {:>8} {:>8} {:>8} {:>7}",
        "m", "span", "load", "vmstat", "hybrid", "n"
    );
    let mut csv = String::from(
        "m,span_s,load_mae,vmstat_mae,hybrid_mae,n
",
    );
    for p in aggregation_sweep(&out, &[1, 2, 3, 6, 12, 30, 60, 180]) {
        println!(
            "{:>6} {:>7.0}s {:>8} {:>8} {:>8} {:>7}",
            p.m,
            p.span,
            pct(p.mae[0]),
            pct(p.mae[1]),
            pct(p.mae[2]),
            p.n
        );
        let _ = writeln!(
            csv,
            "{},{},{},{},{},{}",
            p.m, p.span, p.mae[0], p.mae[1], p.mae[2], p.n
        );
    }
    write_artifact("sweep_aggregation.csv", &csv);

    println!(
        "
Extension: forecast error vs horizon (thing2)"
    );
    println!(
        "{:>6} {:>8} {:>8} {:>8} {:>8}",
        "k", "lead", "load", "vmstat", "hybrid"
    );
    let mut csv = String::from(
        "k,lead_s,load_mae,vmstat_mae,hybrid_mae
",
    );
    for p in horizon_sweep(&out, &[1, 2, 3, 6, 12, 30, 60, 180, 360]) {
        println!(
            "{:>6} {:>7.0}s {:>8} {:>8} {:>8}",
            p.k,
            p.lead,
            pct(p.mae[0]),
            pct(p.mae[1]),
            pct(p.mae[2])
        );
        let _ = writeln!(
            csv,
            "{},{},{},{},{}",
            p.k, p.lead, p.mae[0], p.mae[1], p.mae[2]
        );
    }
    write_artifact("sweep_horizon.csv", &csv);
}

fn run_robustness(cfg: &ExperimentConfig) {
    println!(
        "
Extension: Table 1 across 8 seeds (mean +/- std per cell)"
    );
    let seeds: Vec<u64> = (0..8).map(|i| cfg.seed.wrapping_add(i * 7919)).collect();
    let rows = seed_robustness(cfg, &seeds);
    println!(
        "{:<11} {:>16} {:>16} {:>16}",
        "host", "load avg", "vmstat", "nws hybrid"
    );
    let mut csv = String::from(
        "host,load_mean,load_std,vmstat_mean,vmstat_std,hybrid_mean,hybrid_std
",
    );
    for r in &rows {
        let fmt = |(m, s): (f64, f64)| format!("{} +/- {:.1}%", pct(m), s * 100.0);
        println!(
            "{:<11} {:>16} {:>16} {:>16}",
            r.host,
            fmt(r.cells[0]),
            fmt(r.cells[1]),
            fmt(r.cells[2])
        );
        let _ = writeln!(
            csv,
            "{},{},{},{},{},{},{}",
            r.host,
            r.cells[0].0,
            r.cells[0].1,
            r.cells[1].0,
            r.cells[1].1,
            r.cells[2].0,
            r.cells[2].1
        );
    }
    write_artifact("robustness_table1.csv", &csv);
}

fn run_ablations(cfg: &ExperimentConfig) {
    println!("\nAblation 1: dynamic predictor selection vs fixed predictors (thing1, load avg)");
    let ab = forecaster_ablation(cfg, HostProfile::Thing1);
    let mut fixed = ab.fixed.clone();
    fixed.sort_by(|a, b| a.1.total_cmp(&b.1));
    let mut csv = String::from("method,mae\n");
    let _ = writeln!(csv, "nws-dynamic,{}", ab.dynamic);
    println!("  {:<22} {}", "nws-dynamic", pct(ab.dynamic));
    for (name, mae) in &fixed {
        println!("  {:<22} {}", name, pct(*mae));
        let _ = writeln!(csv, "{name},{mae}");
    }
    write_artifact("ablation_forecasters.csv", &csv);

    println!("\nAblation 2: probe bias on/off");
    let mut csv = String::from("host,with_bias,without_bias\n");
    for host in [
        HostProfile::Conundrum,
        HostProfile::Kongo,
        HostProfile::Thing1,
    ] {
        let b = bias_ablation(cfg, host);
        println!(
            "  {:<10} with bias {}  without bias {}",
            b.host,
            pct(b.with_bias),
            pct(b.without_bias)
        );
        let _ = writeln!(csv, "{},{},{}", b.host, b.with_bias, b.without_bias);
    }
    write_artifact("ablation_bias.csv", &csv);

    println!("\nAblation 3: probe duration sweep on kongo (error vs intrusiveness)");
    let sweep = probe_duration_sweep(cfg, HostProfile::Kongo, &[0.5, 1.0, 1.5, 3.0, 5.0, 10.0]);
    let mut csv = String::from("probe_duration_s,hybrid_error,overhead\n");
    for p in &sweep {
        println!(
            "  probe {:>4.1}s  error {}  overhead {}",
            p.probe_duration,
            pct(p.hybrid_error),
            pct(p.overhead)
        );
        let _ = writeln!(
            csv,
            "{},{},{}",
            p.probe_duration, p.hybrid_error, p.overhead
        );
    }
    write_artifact("ablation_probe_duration.csv", &csv);
}

fn run_sched(quick: bool) {
    println!("\nScheduling experiment: bag-of-tasks over the six hosts");
    let cfg = if quick {
        SchedConfig::quick()
    } else {
        SchedConfig::default()
    };
    let outcomes = run_scheduling_experiment(&cfg);
    let best = outcomes
        .iter()
        .map(|o| o.makespan)
        .fold(f64::INFINITY, f64::min);
    let mut csv = String::from("policy,makespan_s,predicted_s,slowdown_vs_best\n");
    for o in &outcomes {
        println!(
            "  {:<14} makespan {:>8.0}s  (x{:.2} vs best)  tasks/host {:?}",
            o.policy.name(),
            o.makespan,
            o.makespan / best,
            o.tasks_per_host
        );
        let _ = writeln!(
            csv,
            "{},{},{},{}",
            o.policy.name(),
            o.makespan,
            o.predicted_makespan,
            o.makespan / best
        );
    }
    write_artifact("sched_experiment.csv", &csv);

    // Static placement vs dynamic self-scheduling on the same bag.
    let cmp = compare_static_vs_dynamic(&cfg);
    println!(
        "  static forecast LPT {:>6.0}s vs dynamic work-queue {:>6.0}s  (dynamic tasks/host {:?})",
        cmp.static_makespan, cmp.dynamic_makespan, cmp.dynamic_tasks_per_host
    );
}
