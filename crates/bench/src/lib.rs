//! Shared helpers for the repro harness and benchmarks.

use std::fs;
use std::path::{Path, PathBuf};

pub mod alloc_counter;

/// Resolves the `results/` output directory (created on demand).
///
/// Uses `NWS_RESULTS_DIR` when set, else `results/` under the current
/// working directory.
pub fn results_dir() -> PathBuf {
    let dir = std::env::var_os("NWS_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"));
    if let Err(e) = fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
    }
    dir
}

/// Writes a text artifact under the results directory, reporting the path.
pub fn write_artifact(name: &str, contents: &str) {
    let path = results_dir().join(name);
    match fs::write(&path, contents) {
        Ok(()) => println!("  wrote {}", display_relative(&path)),
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }
}

fn display_relative(path: &Path) -> String {
    std::env::current_dir()
        .ok()
        .and_then(|cwd| path.strip_prefix(cwd).ok())
        .unwrap_or(path)
        .display()
        .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_dir_is_creatable_and_writable() {
        let tmp = std::env::temp_dir().join("nws-bench-results-test");
        std::env::set_var("NWS_RESULTS_DIR", &tmp);
        write_artifact("probe.txt", "hello");
        assert_eq!(
            std::fs::read_to_string(tmp.join("probe.txt")).unwrap(),
            "hello"
        );
        std::env::remove_var("NWS_RESULTS_DIR");
        let _ = std::fs::remove_dir_all(&tmp);
    }
}
