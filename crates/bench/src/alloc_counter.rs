//! A counting wrapper around the system allocator, for benchmarks that
//! track allocation-count reductions alongside wall-clock timings.
//!
//! Register it in a binary with
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: nws_bench::alloc_counter::CountingAllocator =
//!     nws_bench::alloc_counter::CountingAllocator;
//! ```
//!
//! then bracket a region with [`snapshot`] and [`AllocSnapshot::since`].
//! Counters are relaxed atomics: cheap enough to leave on permanently,
//! and exact for single-threaded regions (multi-threaded regions count
//! every thread's allocations, which is what a benchmark wants anyway).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

/// Forwards to [`System`], counting every allocation and reallocation.
pub struct CountingAllocator;

// SAFETY: pure pass-through to `System`; the only added behavior is
// relaxed counter increments, which cannot affect allocation semantics.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A grow-in-place still returns fresh usable bytes; count it as
        // one allocator round trip like the others.
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

/// Cumulative allocator counters at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocSnapshot {
    /// Allocator calls (alloc + alloc_zeroed + realloc) so far.
    pub calls: u64,
    /// Bytes requested so far (not live bytes; frees are not subtracted).
    pub bytes: u64,
}

impl AllocSnapshot {
    /// Counters accumulated since `earlier`.
    pub fn since(&self, earlier: &AllocSnapshot) -> AllocSnapshot {
        AllocSnapshot {
            calls: self.calls.saturating_sub(earlier.calls),
            bytes: self.bytes.saturating_sub(earlier.bytes),
        }
    }
}

/// Reads the cumulative counters. Monotone; diff two snapshots with
/// [`AllocSnapshot::since`] to measure a region.
pub fn snapshot() -> AllocSnapshot {
    AllocSnapshot {
        calls: ALLOC_CALLS.load(Ordering::Relaxed),
        bytes: ALLOC_BYTES.load(Ordering::Relaxed),
    }
}

/// Runs `f`, returning its result and the allocations it performed.
///
/// Only meaningful in binaries that registered [`CountingAllocator`] as
/// the global allocator; elsewhere both counters stay zero.
pub fn measure<T>(f: impl FnOnce() -> T) -> (T, AllocSnapshot) {
    let before = snapshot();
    let out = f();
    let after = snapshot();
    (out, after.since(&before))
}

#[cfg(test)]
mod tests {
    use super::*;

    // The test harness does not register the counting allocator, so the
    // counters stay zero here; what can be tested is the snapshot
    // arithmetic itself.
    #[test]
    fn since_subtracts_and_saturates() {
        let a = AllocSnapshot {
            calls: 10,
            bytes: 400,
        };
        let b = AllocSnapshot {
            calls: 25,
            bytes: 1000,
        };
        assert_eq!(
            b.since(&a),
            AllocSnapshot {
                calls: 15,
                bytes: 600
            }
        );
        assert_eq!(a.since(&b), AllocSnapshot { calls: 0, bytes: 0 });
    }

    #[test]
    fn measure_runs_the_closure() {
        let (v, delta) = measure(|| vec![1u8; 64].len());
        assert_eq!(v, 64);
        // Without the global registration the delta is zero, but it must
        // never go negative/saturate weirdly.
        assert!(delta.calls == 0 || delta.calls >= 1);
    }
}
