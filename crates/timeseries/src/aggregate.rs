//! Block aggregation: the `X^(m)` construction of Section 3.2.
//!
//! For a series `X_1, X_2, …` and aggregation level `m`, the aggregated
//! series is `X^(m)_k = (X_{km-m+1} + … + X_{km}) / m` — non-overlapping
//! block means. The paper aggregates 10-second availability measurements
//! with `m = 30` to obtain 5-minute average availability (Tables 4–6,
//! Figure 4). For self-similar series the variance of `X^(m)` decays like
//! `m^(2H-2)`, more slowly than the `1/m` of short-range-dependent series.

use crate::series::Series;

/// Non-overlapping block means of `values` with block length `m`.
///
/// Any trailing partial block is discarded, matching the paper's
/// construction (`k` runs over whole blocks only).
///
/// # Examples
///
/// ```
/// use nws_timeseries::aggregate_mean;
///
/// // 10-second measurements -> 30-second block means (m = 3).
/// let x = [0.9, 0.8, 1.0, 0.2, 0.3, 0.4, 0.99];
/// assert_eq!(aggregate_mean(&x, 3), vec![0.9, 0.3]);
/// ```
///
/// # Panics
///
/// Panics if `m == 0`.
pub fn aggregate_mean(values: &[f64], m: usize) -> Vec<f64> {
    assert!(m > 0, "aggregation level m must be positive");
    values
        .chunks_exact(m)
        .map(|block| block.iter().sum::<f64>() / m as f64)
        .collect()
}

/// Aggregates a [`Series`] into block means of `m` consecutive observations.
///
/// The timestamp of each aggregated point is the timestamp of the *last*
/// observation in its block, so a forecast of the aggregated series made "at"
/// a block's timestamp only uses data available by then.
///
/// # Panics
///
/// Panics if `m == 0`.
pub fn aggregate_series(series: &Series, m: usize) -> Series {
    assert!(m > 0, "aggregation level m must be positive");
    let mut out = Series::with_capacity(format!("{}^({m})", series.name()), series.len() / m);
    let times = series.times();
    let values = series.values();
    for (k, block) in values.chunks_exact(m).enumerate() {
        let t = times[k * m + m - 1];
        let mean = block.iter().sum::<f64>() / m as f64;
        out.push(t, mean).expect("block timestamps are increasing");
    }
    out
}

/// Block means over fixed wall-clock windows rather than fixed counts.
///
/// Splits `[t0, t0 + n*window)` into consecutive windows of `window` seconds
/// and returns the mean of the observations inside each non-empty window,
/// stamped at the window end. Windows with no observations are skipped.
/// Useful when a series is irregularly sampled (e.g. a trace with gaps).
pub fn hourly_block_means(series: &Series, window: f64) -> Series {
    assert!(window > 0.0, "window must be positive");
    let mut out = Series::new(format!("{} ({window}s means)", series.name()));
    if series.is_empty() {
        return out;
    }
    let t0 = series.times()[0];
    let t_end = series.times()[series.len() - 1];
    let mut start = t0;
    while start <= t_end {
        let end = start + window;
        if let Some(mean) = series.mean_in_interval(start, end) {
            out.push(end, mean).expect("window ends are increasing");
        }
        start = end;
    }
    out
}

/// Linearly resamples a series onto a regular grid of spacing `dt`
/// starting at its first timestamp.
///
/// Values between observations are linearly interpolated; the grid stops
/// at the last observation. Useful for bringing irregular external traces
/// (gappy `/proc` recordings, event logs) onto the fixed cadence the
/// forecasting and self-similarity analyses assume.
///
/// Returns an empty series for inputs with fewer than two points.
///
/// # Panics
///
/// Panics unless `dt > 0`.
pub fn resample(series: &Series, dt: f64) -> Series {
    assert!(dt > 0.0, "resampling interval must be positive");
    let mut out = Series::new(format!("{} (dt={dt})", series.name()));
    if series.len() < 2 {
        return out;
    }
    let times = series.times();
    let values = series.values();
    let t0 = times[0];
    let t_end = times[times.len() - 1];
    let mut idx = 0usize;
    let mut k = 0u64;
    loop {
        let t = t0 + k as f64 * dt;
        if t > t_end + 1e-9 {
            break;
        }
        // Advance to the segment containing t.
        while idx + 1 < times.len() && times[idx + 1] < t {
            idx += 1;
        }
        let (ta, va) = (times[idx], values[idx]);
        let v = if idx + 1 < times.len() {
            let (tb, vb) = (times[idx + 1], values[idx + 1]);
            if tb > ta {
                va + (vb - va) * ((t - ta) / (tb - ta)).clamp(0.0, 1.0)
            } else {
                va
            }
        } else {
            va
        };
        out.push(t, v).expect("grid is strictly increasing");
        k += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregate_mean_blocks() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0];
        assert_eq!(aggregate_mean(&v, 2), vec![1.5, 3.5, 5.5]);
        assert_eq!(aggregate_mean(&v, 3), vec![2.0, 5.0]);
        assert_eq!(aggregate_mean(&v, 7), vec![4.0]);
        assert_eq!(aggregate_mean(&v, 8), Vec::<f64>::new());
    }

    #[test]
    fn aggregate_mean_m1_is_identity() {
        let v = [0.25, 0.5, 0.75];
        assert_eq!(aggregate_mean(&v, 1), v.to_vec());
    }

    #[test]
    #[should_panic(expected = "aggregation level m must be positive")]
    fn aggregate_mean_rejects_zero_m() {
        aggregate_mean(&[1.0], 0);
    }

    #[test]
    fn aggregate_series_stamps_block_end() {
        let s = Series::from_values("a", 0.0, 10.0, [1.0, 2.0, 3.0, 4.0]).unwrap();
        let agg = aggregate_series(&s, 2);
        assert_eq!(agg.values(), &[1.5, 3.5]);
        // Block of t=0,10 stamped at 10; block of t=20,30 stamped at 30.
        assert_eq!(agg.times(), &[10.0, 30.0]);
        assert_eq!(agg.name(), "a^(2)");
    }

    #[test]
    fn aggregate_series_drops_partial_tail() {
        let s = Series::from_values("a", 0.0, 1.0, [1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        let agg = aggregate_series(&s, 2);
        assert_eq!(agg.len(), 2);
    }

    #[test]
    fn wall_clock_means_skip_empty_windows() {
        let mut s = Series::new("gappy");
        s.push(0.0, 1.0).unwrap();
        s.push(1.0, 3.0).unwrap();
        // Gap: nothing in [10, 20).
        s.push(25.0, 5.0).unwrap();
        let means = hourly_block_means(&s, 10.0);
        assert_eq!(means.values(), &[2.0, 5.0]);
        assert_eq!(means.times(), &[10.0, 30.0]);
    }

    #[test]
    fn resample_interpolates_linearly() {
        let mut s = Series::new("irregular");
        s.push(0.0, 0.0).unwrap();
        s.push(4.0, 4.0).unwrap();
        s.push(10.0, 1.0).unwrap();
        let r = resample(&s, 2.0);
        assert_eq!(r.times(), &[0.0, 2.0, 4.0, 6.0, 8.0, 10.0]);
        let v = r.values();
        assert!((v[1] - 2.0).abs() < 1e-12); // midpoint of 0->4
        assert!((v[2] - 4.0).abs() < 1e-12); // exact knot
        assert!((v[3] - 3.0).abs() < 1e-12); // 1/3 of 4->1
        assert!((v[5] - 1.0).abs() < 1e-12); // endpoint
    }

    #[test]
    fn resample_degenerate_inputs() {
        assert!(resample(&Series::new("e"), 1.0).is_empty());
        let mut one = Series::new("one");
        one.push(5.0, 2.0).unwrap();
        assert!(resample(&one, 1.0).is_empty());
    }

    #[test]
    fn resample_identity_on_matching_grid() {
        let s = Series::from_values("g", 0.0, 10.0, [0.1, 0.2, 0.3]).unwrap();
        let r = resample(&s, 10.0);
        assert_eq!(r.values(), s.values());
        assert_eq!(r.times(), s.times());
    }

    #[test]
    #[should_panic(expected = "resampling interval")]
    fn resample_rejects_zero_dt() {
        resample(&Series::new("x"), 0.0);
    }

    #[test]
    fn variance_of_aggregate_of_iid_decays_like_one_over_m() {
        // For i.i.d.-ish data the block-mean variance should shrink by ~m.
        // Use a deterministic pseudo-random-looking sequence.
        let mut state: u64 = 0x9E3779B97F4A7C15;
        let v: Vec<f64> = (0..4000)
            .map(|_| {
                // SplitMix64 step: high-quality, dependency-free pseudo-noise.
                state = state.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^= z >> 31;
                (z >> 11) as f64 / (1u64 << 53) as f64
            })
            .collect();
        let var = |x: &[f64]| {
            let m = x.iter().sum::<f64>() / x.len() as f64;
            x.iter().map(|&a| (a - m) * (a - m)).sum::<f64>() / x.len() as f64
        };
        let v10 = aggregate_mean(&v, 10);
        let ratio = var(&v) / var(&v10);
        // Short-range data: ratio near 10 (generous tolerance).
        assert!(ratio > 4.0 && ratio < 25.0, "ratio = {ratio}");
    }
}
