//! Minimal CSV persistence for measurement traces.
//!
//! The repro harness writes every regenerated table/figure as CSV under
//! `results/`, and traces can be exported for external plotting. The format
//! is deliberately simple: a header line, then `time,value` rows (for a
//! single series) or `time,v1,v2,…` (for column-aligned multi-series files).

use crate::series::{Series, SeriesError};
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// Errors raised while reading a trace file.
#[derive(Debug)]
pub enum CsvError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A malformed row (wrong column count or unparseable number).
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// The parsed data violated series invariants.
    Series(SeriesError),
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "io error: {e}"),
            CsvError::Parse { line, message } => write!(f, "line {line}: {message}"),
            CsvError::Series(e) => write!(f, "series error: {e}"),
        }
    }
}

impl std::error::Error for CsvError {}

impl From<io::Error> for CsvError {
    fn from(e: io::Error) -> Self {
        CsvError::Io(e)
    }
}

impl From<SeriesError> for CsvError {
    fn from(e: SeriesError) -> Self {
        CsvError::Series(e)
    }
}

/// Renders a single series as `time,value` CSV text.
pub fn series_to_csv(series: &Series) -> String {
    let mut out = String::with_capacity(series.len() * 24 + 32);
    let _ = writeln!(out, "time,{}", sanitize_header(series.name()));
    for p in series.iter() {
        let _ = writeln!(out, "{},{}", p.time, p.value);
    }
    out
}

/// Renders several series sharing identical timestamps as one CSV table.
///
/// # Panics
///
/// Panics if the series do not all share the same timestamps (columns would
/// not align).
pub fn multi_series_to_csv(series: &[&Series]) -> String {
    assert!(!series.is_empty(), "need at least one series");
    let times = series[0].times();
    for s in &series[1..] {
        assert_eq!(s.times(), times, "series timestamps must align");
    }
    let mut out = String::new();
    let _ = write!(out, "time");
    for s in series {
        let _ = write!(out, ",{}", sanitize_header(s.name()));
    }
    let _ = writeln!(out);
    for (i, &t) in times.iter().enumerate() {
        let _ = write!(out, "{t}");
        for s in series {
            let _ = write!(out, ",{}", s.values()[i]);
        }
        let _ = writeln!(out);
    }
    out
}

/// Writes a single series to `path` as CSV, creating parent directories.
pub fn write_series(series: &Series, path: impl AsRef<Path>) -> Result<(), CsvError> {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    fs::write(path, series_to_csv(series))?;
    Ok(())
}

/// Reads a `time,value` CSV (with a single header line) back into a series.
///
/// The series takes its name from the second header column.
pub fn read_series(path: impl AsRef<Path>) -> Result<Series, CsvError> {
    let text = fs::read_to_string(path)?;
    parse_series(&text)
}

/// Parses `time,value` CSV text into a series.
pub fn parse_series(text: &str) -> Result<Series, CsvError> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines.next().ok_or(CsvError::Parse {
        line: 1,
        message: "empty file".into(),
    })?;
    let name = header.split(',').nth(1).unwrap_or("series").trim();
    let mut series = Series::new(name);
    for (idx, line) in lines {
        let line_no = idx + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let mut parts = trimmed.split(',');
        let time = parse_field(parts.next(), line_no, "time")?;
        let value = parse_field(parts.next(), line_no, "value")?;
        if parts.next().is_some() {
            return Err(CsvError::Parse {
                line: line_no,
                message: "expected exactly two columns".into(),
            });
        }
        series.push(time, value)?;
    }
    Ok(series)
}

fn parse_field(field: Option<&str>, line: usize, what: &str) -> Result<f64, CsvError> {
    let raw = field.ok_or_else(|| CsvError::Parse {
        line,
        message: format!("missing {what} column"),
    })?;
    raw.trim().parse::<f64>().map_err(|e| CsvError::Parse {
        line,
        message: format!("bad {what} value {raw:?}: {e}"),
    })
}

/// Replaces commas/newlines in a header label so it cannot break the format.
fn sanitize_header(name: &str) -> String {
    name.replace([',', '\n', '\r'], "_")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Series {
        Series::from_values("avail", 0.0, 10.0, [0.5, 0.25, 1.0]).unwrap()
    }

    #[test]
    fn roundtrip_text() {
        let s = sample();
        let text = series_to_csv(&s);
        let back = parse_series(&text).unwrap();
        assert_eq!(back.name(), "avail");
        assert_eq!(back.values(), s.values());
        assert_eq!(back.times(), s.times());
    }

    #[test]
    fn roundtrip_file() {
        let dir = std::env::temp_dir().join("nws-csv-test");
        let path = dir.join("trace.csv");
        write_series(&sample(), &path).unwrap();
        let back = read_series(&path).unwrap();
        assert_eq!(back, sample());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn multi_series_layout() {
        let a = sample();
        let mut b = sample();
        b.set_name("other");
        let text = multi_series_to_csv(&[&a, &b]);
        let mut lines = text.lines();
        assert_eq!(lines.next(), Some("time,avail,other"));
        assert_eq!(lines.next(), Some("0,0.5,0.5"));
    }

    #[test]
    #[should_panic(expected = "series timestamps must align")]
    fn multi_series_rejects_misaligned() {
        let a = sample();
        let b = Series::from_values("b", 5.0, 10.0, [0.1, 0.2, 0.3]).unwrap();
        multi_series_to_csv(&[&a, &b]);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(matches!(
            parse_series("time,v\n1.0,abc\n"),
            Err(CsvError::Parse { line: 2, .. })
        ));
        assert!(matches!(
            parse_series("time,v\n1.0\n"),
            Err(CsvError::Parse { line: 2, .. })
        ));
        assert!(matches!(
            parse_series("time,v\n1.0,2.0,3.0\n"),
            Err(CsvError::Parse { line: 2, .. })
        ));
        assert!(matches!(
            parse_series(""),
            Err(CsvError::Parse { line: 1, .. })
        ));
    }

    #[test]
    fn parse_skips_blank_lines_and_sanitizes_header() {
        let mut s = Series::new("a,b\nc");
        s.push(1.0, 2.0).unwrap();
        let text = series_to_csv(&s);
        assert!(text.starts_with("time,a_b_c\n"));
        let back = parse_series("time,v\n\n1.0,2.0\n\n").unwrap();
        assert_eq!(back.len(), 1);
    }

    #[test]
    fn parse_enforces_monotonic_time() {
        let err = parse_series("time,v\n2.0,1.0\n1.0,1.0\n").unwrap_err();
        assert!(matches!(err, CsvError::Series(_)));
    }
}
