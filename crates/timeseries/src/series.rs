//! The [`Series`] container: a monotonically timestamped `f64` series.

use crate::Seconds;
use std::fmt;

/// One observation: a timestamp (seconds) and a value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimePoint {
    /// Observation time in seconds.
    pub time: Seconds,
    /// Observed value (for availability series, a fraction in `[0, 1]`).
    pub value: f64,
}

impl TimePoint {
    /// Creates a new time point.
    pub fn new(time: Seconds, value: f64) -> Self {
        Self { time, value }
    }
}

/// Errors raised by [`Series`] operations.
#[derive(Debug, Clone, PartialEq)]
pub enum SeriesError {
    /// A pushed timestamp was not strictly greater than the previous one.
    NonMonotonicTime {
        /// Timestamp of the last point already in the series.
        last: Seconds,
        /// The offending new timestamp.
        pushed: Seconds,
    },
    /// A pushed value was NaN or infinite.
    NonFiniteValue {
        /// The offending timestamp.
        time: Seconds,
    },
    /// The operation needs more data than the series holds.
    TooShort {
        /// Number of points required.
        needed: usize,
        /// Number of points present.
        have: usize,
    },
}

impl fmt::Display for SeriesError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SeriesError::NonMonotonicTime { last, pushed } => {
                write!(f, "non-monotonic timestamp: pushed {pushed} after {last}")
            }
            SeriesError::NonFiniteValue { time } => {
                write!(f, "non-finite value at t={time}")
            }
            SeriesError::TooShort { needed, have } => {
                write!(f, "series too short: need {needed} points, have {have}")
            }
        }
    }
}

impl std::error::Error for SeriesError {}

/// A named, monotonically timestamped series of `f64` measurements.
///
/// Sensors append with [`Series::push`]; analysis code reads the value slice
/// with [`Series::values`]. Timestamps must be strictly increasing — the NWS
/// measurement loop guarantees this, and the forecasting and autocorrelation
/// machinery relies on it.
///
/// # Examples
///
/// ```
/// use nws_timeseries::Series;
///
/// let mut avail = Series::new("thing1/load");
/// avail.push(0.0, 0.80).unwrap();
/// avail.push(10.0, 0.75).unwrap();
/// avail.push(20.0, 0.90).unwrap();
///
/// // The paper's protocol: the measurement taken most immediately
/// // before a test process that starts at t = 14 s.
/// let prior = avail.at_or_before(14.0).unwrap();
/// assert_eq!(prior.value, 0.75);
///
/// // Out-of-order timestamps are rejected.
/// assert!(avail.push(5.0, 0.5).is_err());
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Series {
    name: String,
    times: Vec<Seconds>,
    values: Vec<f64>,
}

impl Series {
    /// Creates an empty series with a display name.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            times: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Creates an empty series with capacity for `n` points.
    pub fn with_capacity(name: impl Into<String>, n: usize) -> Self {
        Self {
            name: name.into(),
            times: Vec::with_capacity(n),
            values: Vec::with_capacity(n),
        }
    }

    /// Builds a series from parallel time/value vectors.
    ///
    /// # Errors
    ///
    /// Returns an error if lengths differ is impossible (panics instead, this
    /// is a programming error); returns [`SeriesError::NonMonotonicTime`] or
    /// [`SeriesError::NonFiniteValue`] for bad data.
    pub fn from_points(
        name: impl Into<String>,
        points: impl IntoIterator<Item = TimePoint>,
    ) -> Result<Self, SeriesError> {
        let mut s = Series::new(name);
        for p in points {
            s.push(p.time, p.value)?;
        }
        Ok(s)
    }

    /// Builds a regularly sampled series starting at `t0` with spacing `dt`.
    pub fn from_values(
        name: impl Into<String>,
        t0: Seconds,
        dt: Seconds,
        values: impl IntoIterator<Item = f64>,
    ) -> Result<Self, SeriesError> {
        let mut s = Series::new(name);
        for (i, v) in values.into_iter().enumerate() {
            s.push(t0 + dt * i as f64, v)?;
        }
        Ok(s)
    }

    /// The display name of the series.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the series.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Appends an observation.
    ///
    /// # Errors
    ///
    /// Fails if `time` is not strictly after the last timestamp or `value`
    /// is not finite.
    pub fn push(&mut self, time: Seconds, value: f64) -> Result<(), SeriesError> {
        if let Some(&last) = self.times.last() {
            if time <= last {
                return Err(SeriesError::NonMonotonicTime { last, pushed: time });
            }
        }
        if !value.is_finite() {
            return Err(SeriesError::NonFiniteValue { time });
        }
        self.times.push(time);
        self.values.push(value);
        Ok(())
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when the series holds no observations.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The observation values in time order.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// The observation timestamps in increasing order.
    pub fn times(&self) -> &[Seconds] {
        &self.times
    }

    /// The `i`-th observation.
    pub fn get(&self, i: usize) -> Option<TimePoint> {
        Some(TimePoint::new(*self.times.get(i)?, *self.values.get(i)?))
    }

    /// The most recent observation.
    pub fn last(&self) -> Option<TimePoint> {
        if self.is_empty() {
            None
        } else {
            self.get(self.len() - 1)
        }
    }

    /// Iterates over observations as [`TimePoint`]s.
    pub fn iter(&self) -> impl Iterator<Item = TimePoint> + '_ {
        self.times
            .iter()
            .zip(self.values.iter())
            .map(|(&time, &value)| TimePoint { time, value })
    }

    /// Index of the last observation at or before `time`, if any.
    ///
    /// This is the lookup the measurement-error protocol uses: *"we use the
    /// measurement taken most immediately before the test process executes"*
    /// (Section 2.2).
    pub fn index_at_or_before(&self, time: Seconds) -> Option<usize> {
        // partition_point returns the count of timestamps <= time.
        let n = self.times.partition_point(|&t| t <= time);
        n.checked_sub(1)
    }

    /// The observation taken most immediately before (or at) `time`.
    pub fn at_or_before(&self, time: Seconds) -> Option<TimePoint> {
        self.index_at_or_before(time).and_then(|i| self.get(i))
    }

    /// Mean of the values inside the half-open time interval `[start, end)`.
    ///
    /// Returns `None` if no observation falls inside the interval.
    pub fn mean_in_interval(&self, start: Seconds, end: Seconds) -> Option<f64> {
        let lo = self.times.partition_point(|&t| t < start);
        let hi = self.times.partition_point(|&t| t < end);
        if lo >= hi {
            return None;
        }
        let slice = &self.values[lo..hi];
        Some(slice.iter().sum::<f64>() / slice.len() as f64)
    }

    /// A sub-series restricted to the half-open interval `[start, end)`.
    pub fn slice_interval(&self, start: Seconds, end: Seconds) -> Series {
        let lo = self.times.partition_point(|&t| t < start);
        let hi = self.times.partition_point(|&t| t < end);
        Series {
            name: self.name.clone(),
            times: self.times[lo..hi].to_vec(),
            values: self.values[lo..hi].to_vec(),
        }
    }

    /// Applies `f` to every value, preserving timestamps.
    pub fn map_values(&self, mut f: impl FnMut(f64) -> f64) -> Series {
        Series {
            name: self.name.clone(),
            times: self.times.clone(),
            values: self.values.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Mean sampling interval, or `None` with fewer than two points.
    pub fn mean_dt(&self) -> Option<Seconds> {
        if self.len() < 2 {
            return None;
        }
        let span = self.times[self.len() - 1] - self.times[0];
        Some(span / (self.len() - 1) as f64)
    }
}

impl IntoIterator for &Series {
    type Item = TimePoint;
    type IntoIter = std::vec::IntoIter<TimePoint>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter().collect::<Vec<_>>().into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Series {
        Series::from_values("s", 0.0, 10.0, [0.5, 0.6, 0.7, 0.8]).unwrap()
    }

    #[test]
    fn push_and_read_back() {
        let s = sample();
        assert_eq!(s.len(), 4);
        assert_eq!(s.values(), &[0.5, 0.6, 0.7, 0.8]);
        assert_eq!(s.times(), &[0.0, 10.0, 20.0, 30.0]);
        assert_eq!(s.last(), Some(TimePoint::new(30.0, 0.8)));
    }

    #[test]
    fn rejects_non_monotonic_time() {
        let mut s = sample();
        let err = s.push(30.0, 0.9).unwrap_err();
        assert!(matches!(err, SeriesError::NonMonotonicTime { .. }));
        let err = s.push(25.0, 0.9).unwrap_err();
        assert!(matches!(err, SeriesError::NonMonotonicTime { .. }));
        // Strictly increasing still works.
        s.push(30.1, 0.9).unwrap();
    }

    #[test]
    fn rejects_non_finite_values() {
        let mut s = Series::new("x");
        assert!(matches!(
            s.push(0.0, f64::NAN),
            Err(SeriesError::NonFiniteValue { .. })
        ));
        assert!(matches!(
            s.push(0.0, f64::INFINITY),
            Err(SeriesError::NonFiniteValue { .. })
        ));
        assert!(s.is_empty());
    }

    #[test]
    fn at_or_before_picks_most_recent_measurement() {
        let s = sample();
        // Exactly on a timestamp: that observation counts.
        assert_eq!(s.at_or_before(10.0), Some(TimePoint::new(10.0, 0.6)));
        // Between observations: the earlier one.
        assert_eq!(s.at_or_before(14.0), Some(TimePoint::new(10.0, 0.6)));
        // Before the first observation: none.
        assert_eq!(s.at_or_before(-1.0), None);
        // After the last: the last.
        assert_eq!(s.at_or_before(99.0), Some(TimePoint::new(30.0, 0.8)));
    }

    #[test]
    fn mean_in_interval_half_open() {
        let s = sample();
        // [0, 20) covers t=0 and t=10.
        assert!((s.mean_in_interval(0.0, 20.0).unwrap() - 0.55).abs() < 1e-12);
        // Empty interval.
        assert_eq!(s.mean_in_interval(1.0, 9.0), None);
        // Whole series.
        assert!((s.mean_in_interval(0.0, 1e9).unwrap() - 0.65).abs() < 1e-12);
    }

    #[test]
    fn slice_interval_bounds() {
        let s = sample();
        let sub = s.slice_interval(10.0, 30.0);
        assert_eq!(sub.values(), &[0.6, 0.7]);
        assert_eq!(sub.times(), &[10.0, 20.0]);
        assert!(s.slice_interval(100.0, 200.0).is_empty());
    }

    #[test]
    fn map_values_preserves_times() {
        let s = sample().map_values(|v| 1.0 - v);
        assert_eq!(s.times(), sample().times());
        assert!((s.values()[0] - 0.5).abs() < 1e-12);
        assert!((s.values()[3] - 0.2).abs() < 1e-12);
    }

    #[test]
    fn mean_dt_of_regular_series() {
        assert_eq!(sample().mean_dt(), Some(10.0));
        assert_eq!(Series::new("e").mean_dt(), None);
    }

    #[test]
    fn from_points_roundtrip() {
        let pts = vec![TimePoint::new(1.0, 0.1), TimePoint::new(2.0, 0.2)];
        let s = Series::from_points("p", pts.clone()).unwrap();
        let back: Vec<TimePoint> = s.iter().collect();
        assert_eq!(back, pts);
    }
}
