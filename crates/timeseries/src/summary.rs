//! Descriptive summaries of measurement series.

use crate::series::Series;

/// Descriptive statistics of a value sequence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population variance (divides by `n`, matching the paper's Table 4
    /// series variances).
    pub variance: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
    /// Median value.
    pub median: f64,
}

/// Summarizes a slice of values. Returns `None` for an empty slice.
pub fn summarize(values: &[f64]) -> Option<Summary> {
    if values.is_empty() {
        return None;
    }
    let n = values.len();
    let mean = values.iter().sum::<f64>() / n as f64;
    let variance = values.iter().map(|&v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for &v in values {
        min = min.min(v);
        max = max.max(v);
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let median = if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    };
    Some(Summary {
        n,
        mean,
        variance,
        std_dev: variance.sqrt(),
        min,
        max,
        median,
    })
}

impl Summary {
    /// Summarizes the values of a [`Series`].
    pub fn of_series(series: &Series) -> Option<Summary> {
        summarize(series.values())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_values() {
        let s = summarize(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert_eq!(s.n, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.variance - 4.0).abs() < 1e-12);
        assert!((s.std_dev - 2.0).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert!((s.median - 4.5).abs() < 1e-12);
    }

    #[test]
    fn empty_is_none() {
        assert_eq!(summarize(&[]), None);
    }

    #[test]
    fn single_value() {
        let s = summarize(&[3.5]).unwrap();
        assert_eq!(s.mean, 3.5);
        assert_eq!(s.variance, 0.0);
        assert_eq!(s.median, 3.5);
        assert_eq!(s.min, 3.5);
        assert_eq!(s.max, 3.5);
    }

    #[test]
    fn nan_input_does_not_panic() {
        // total_cmp sorts NaN to the end instead of panicking mid-sort.
        let s = summarize(&[1.0, f64::NAN, 3.0]).unwrap();
        assert_eq!(s.n, 3);
        assert_eq!(s.median, 3.0);
    }

    #[test]
    fn of_series_matches_slice() {
        let series = Series::from_values("x", 0.0, 1.0, [1.0, 2.0, 3.0]).unwrap();
        assert_eq!(Summary::of_series(&series), summarize(&[1.0, 2.0, 3.0]));
    }
}
