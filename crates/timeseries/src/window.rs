//! Sliding windows over measurement histories.
//!
//! The NWS forecasters each maintain a "sliding window" over previous
//! measurements (Section 3): a bounded buffer holding the most recent `k`
//! values. [`SlidingWindow`] is that buffer — O(1) amortized push, stable
//! iteration order from oldest to newest, and cheap incremental sum so the
//! windowed-mean forecasters do not rescan on every update.

/// A bounded FIFO window over the most recent `capacity` values.
///
/// Pushing beyond capacity evicts the oldest value. An incremental running
/// sum is maintained with periodic exact recomputation to bound floating
/// point drift.
///
/// # Examples
///
/// ```
/// use nws_timeseries::SlidingWindow;
///
/// let mut w = SlidingWindow::new(3);
/// for v in [1.0, 0.25, 0.5, 0.75] {
///     w.push(v);
/// }
/// // Only the last three values remain.
/// assert_eq!(w.to_vec(), vec![0.25, 0.5, 0.75]);
/// assert_eq!(w.mean(), Some(0.5));
/// assert_eq!(w.median(), Some(0.5));
/// ```
#[derive(Debug, Clone)]
pub struct SlidingWindow {
    buf: Vec<f64>,
    head: usize,
    len: usize,
    sum: f64,
    pushes_since_refresh: usize,
}

/// How many pushes between exact sum recomputations.
const REFRESH_INTERVAL: usize = 4096;

impl SlidingWindow {
    /// Creates a window holding at most `capacity` values.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "window capacity must be positive");
        Self {
            buf: vec![0.0; capacity],
            head: 0,
            len: 0,
            sum: 0.0,
            pushes_since_refresh: 0,
        }
    }

    /// Maximum number of values retained.
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    /// Current number of retained values.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no values have been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True once the window has been filled to capacity.
    pub fn is_full(&self) -> bool {
        self.len == self.capacity()
    }

    /// Pushes a value, evicting the oldest when full. Returns the evicted
    /// value, if any.
    pub fn push(&mut self, value: f64) -> Option<f64> {
        let cap = self.buf.len();
        let evicted = if self.len == cap {
            let old = self.buf[self.head];
            self.buf[self.head] = value;
            self.head = (self.head + 1) % cap;
            self.sum += value - old;
            Some(old)
        } else {
            let idx = (self.head + self.len) % cap;
            self.buf[idx] = value;
            self.len += 1;
            self.sum += value;
            None
        };
        self.pushes_since_refresh += 1;
        if self.pushes_since_refresh >= REFRESH_INTERVAL {
            self.sum = self.iter().sum();
            self.pushes_since_refresh = 0;
        }
        evicted
    }

    /// Removes every value.
    pub fn clear(&mut self) {
        self.head = 0;
        self.len = 0;
        self.sum = 0.0;
        self.pushes_since_refresh = 0;
    }

    /// Sum of the retained values.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of the retained values, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.len == 0 {
            None
        } else {
            Some(self.sum / self.len as f64)
        }
    }

    /// The most recently pushed value, if any.
    pub fn newest(&self) -> Option<f64> {
        if self.len == 0 {
            None
        } else {
            let cap = self.buf.len();
            Some(self.buf[(self.head + self.len - 1) % cap])
        }
    }

    /// The oldest retained value, if any.
    pub fn oldest(&self) -> Option<f64> {
        if self.len == 0 {
            None
        } else {
            Some(self.buf[self.head])
        }
    }

    /// The value at position `i`, where 0 is the oldest retained value and
    /// `len() - 1` the newest. `None` when out of range.
    pub fn get(&self, i: usize) -> Option<f64> {
        if i >= self.len {
            None
        } else {
            let cap = self.buf.len();
            Some(self.buf[(self.head + i) % cap])
        }
    }

    /// Iterates oldest → newest.
    pub fn iter(&self) -> WindowIter<'_> {
        WindowIter {
            window: self,
            pos: 0,
        }
    }

    /// Copies the retained values, oldest → newest, into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<f64> {
        self.iter().collect()
    }

    /// Median of the retained values, or `None` when empty.
    ///
    /// For an even count, the mean of the two middle values. O(n log n);
    /// the NWS median forecasters call this once per measurement on windows
    /// of at most a few hundred values.
    pub fn median(&self) -> Option<f64> {
        if self.len == 0 {
            return None;
        }
        let mut v = self.to_vec();
        v.sort_by(|a, b| a.total_cmp(b));
        let n = v.len();
        Some(if n % 2 == 1 {
            v[n / 2]
        } else {
            (v[n / 2 - 1] + v[n / 2]) / 2.0
        })
    }

    /// α-trimmed mean: drops `floor(α·n)` values from each end of the sorted
    /// window, then averages the rest. `alpha` must be in `[0, 0.5)`.
    pub fn trimmed_mean(&self, alpha: f64) -> Option<f64> {
        assert!((0.0..0.5).contains(&alpha), "alpha must be in [0, 0.5)");
        if self.len == 0 {
            return None;
        }
        let mut v = self.to_vec();
        v.sort_by(|a, b| a.total_cmp(b));
        let k = (alpha * v.len() as f64).floor() as usize;
        let kept = &v[k..v.len() - k];
        if kept.is_empty() {
            return self.median();
        }
        Some(kept.iter().sum::<f64>() / kept.len() as f64)
    }
}

/// Iterator over a [`SlidingWindow`], oldest → newest.
#[derive(Debug)]
pub struct WindowIter<'a> {
    window: &'a SlidingWindow,
    pos: usize,
}

impl Iterator for WindowIter<'_> {
    type Item = f64;

    fn next(&mut self) -> Option<f64> {
        if self.pos >= self.window.len {
            return None;
        }
        let cap = self.window.buf.len();
        let idx = (self.window.head + self.pos) % cap;
        self.pos += 1;
        Some(self.window.buf[idx])
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.window.len - self.pos;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for WindowIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_then_evicts_fifo() {
        let mut w = SlidingWindow::new(3);
        assert_eq!(w.push(1.0), None);
        assert_eq!(w.push(2.0), None);
        assert_eq!(w.push(3.0), None);
        assert!(w.is_full());
        assert_eq!(w.push(4.0), Some(1.0));
        assert_eq!(w.to_vec(), vec![2.0, 3.0, 4.0]);
        assert_eq!(w.oldest(), Some(2.0));
        assert_eq!(w.newest(), Some(4.0));
    }

    #[test]
    fn incremental_sum_matches_exact() {
        let mut w = SlidingWindow::new(5);
        for i in 0..100 {
            w.push((i as f64) * 0.37);
            let exact: f64 = w.iter().sum();
            assert!((w.sum() - exact).abs() < 1e-9);
        }
    }

    #[test]
    fn mean_median_trimmed() {
        let mut w = SlidingWindow::new(5);
        for v in [5.0, 1.0, 3.0, 2.0, 4.0] {
            w.push(v);
        }
        assert_eq!(w.mean(), Some(3.0));
        assert_eq!(w.median(), Some(3.0));
        // Trim 20% from each end of [1,2,3,4,5] -> [2,3,4].
        assert_eq!(w.trimmed_mean(0.2), Some(3.0));
        // Outlier resistance: replace oldest with a spike.
        w.push(100.0); // evicts 5.0 -> window [1,3,2,4,100]
        assert_eq!(w.median(), Some(3.0));
        assert!(w.mean().unwrap() > 20.0);
    }

    #[test]
    fn median_even_count() {
        let mut w = SlidingWindow::new(4);
        for v in [1.0, 2.0, 3.0, 4.0] {
            w.push(v);
        }
        assert_eq!(w.median(), Some(2.5));
    }

    #[test]
    fn empty_window_stats_are_none() {
        let w = SlidingWindow::new(4);
        assert_eq!(w.mean(), None);
        assert_eq!(w.median(), None);
        assert_eq!(w.trimmed_mean(0.1), None);
        assert_eq!(w.newest(), None);
        assert_eq!(w.oldest(), None);
    }

    #[test]
    fn clear_resets() {
        let mut w = SlidingWindow::new(2);
        w.push(1.0);
        w.push(2.0);
        w.clear();
        assert!(w.is_empty());
        assert_eq!(w.sum(), 0.0);
        w.push(9.0);
        assert_eq!(w.to_vec(), vec![9.0]);
    }

    #[test]
    #[should_panic(expected = "window capacity must be positive")]
    fn zero_capacity_panics() {
        SlidingWindow::new(0);
    }

    #[test]
    fn sum_refresh_bounds_drift() {
        let mut w = SlidingWindow::new(8);
        for i in 0..20_000 {
            w.push((i as f64).sin() * 1e6);
        }
        let exact: f64 = w.iter().sum();
        assert!((w.sum() - exact).abs() < 1e-3, "drift too large");
    }

    #[test]
    fn get_indexes_oldest_to_newest() {
        let mut w = SlidingWindow::new(3);
        assert_eq!(w.get(0), None);
        for v in [1.0, 2.0, 3.0, 4.0] {
            w.push(v);
        }
        assert_eq!(w.get(0), Some(2.0));
        assert_eq!(w.get(1), Some(3.0));
        assert_eq!(w.get(2), Some(4.0));
        assert_eq!(w.get(3), None);
    }

    #[test]
    fn iterator_size_hint() {
        let mut w = SlidingWindow::new(3);
        w.push(1.0);
        w.push(2.0);
        let it = w.iter();
        assert_eq!(it.size_hint(), (2, Some(2)));
        assert_eq!(it.len(), 2);
    }
}
