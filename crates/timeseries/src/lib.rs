//! Timestamped time-series support for the NWS CPU availability study.
//!
//! The paper treats histories of CPU availability measurements as statistical
//! time series: sensors emit a reading every 10 seconds, forecasters consume
//! the resulting series one value at a time, and the self-similarity analysis
//! aggregates the series into block means (the `X^(m)` construction of
//! Section 3.2).
//!
//! This crate provides the shared container ([`Series`]), block aggregation
//! ([`aggregate`]), sliding windows ([`window`]), summary statistics
//! ([`summary`]) and a small CSV reader/writer ([`csv`]) used by every other
//! crate in the workspace.

pub mod aggregate;
pub mod csv;
pub mod series;
pub mod summary;
pub mod window;

pub use aggregate::{aggregate_mean, aggregate_series, hourly_block_means, resample};
pub use series::{Series, SeriesError, TimePoint};
pub use summary::{summarize, Summary};
pub use window::{SlidingWindow, WindowIter};

/// Seconds, the time unit used throughout the workspace.
///
/// Simulation time starts at `0.0`; wall-clock traces use seconds since their
/// own epoch. All cadences in the paper (10 s measurement interval, 1.5 s
/// probe, 5 min aggregation, 24 h traces) are expressible exactly enough in
/// `f64` seconds.
pub type Seconds = f64;
