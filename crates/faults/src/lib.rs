//! Deterministic, seeded fault injection for the NWS measurement path.
//!
//! A long-running grid monitor has to survive sensor dropouts, failed or
//! timed-out probes, host outages with reboots, and measurements that
//! arrive late or out of order. This crate models those hazards as a
//! [`FaultPlan`]: a pure function of `(plan seed, host name, slot index)`
//! that every layer of the measurement path can consult. Because each
//! host's fault stream is forked from its name — exactly like the
//! workload RNG in `nws-sim` — fault schedules are bit-identical no
//! matter how hosts are partitioned across threads.
//!
//! The inert plan, [`FaultPlan::none()`], draws nothing from any RNG, so
//! a fault-free run is bit-identical to a build without this crate.

use nws_stats::Rng;

/// Salt XOR-ed into per-host fault seeds so the fault stream is
/// independent of the host's workload stream even though both are
/// derived from the host name and a base seed.
const FAULT_SALT: u64 = 0xFA17_5EED_0BAD_CAFE;

/// FNV-1a hash of a host name; mirrors the seeding scheme used by the
/// experiment drivers so per-host streams are stable under reordering.
fn fnv1a(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Per-slot fault probabilities and duration ranges.
///
/// All probabilities are per measurement slot (one slot = one 10 s
/// cadence tick) except `probe_failure`, which is per probe *attempt*
/// and only consulted on probe slots.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultRates {
    /// Probability that the loadavg reading for a slot is lost.
    pub sensor_dropout: f64,
    /// Probability that a single probe attempt fails (retries re-roll).
    pub probe_failure: f64,
    /// Probability that an outage begins on a given (up) slot.
    pub outage: f64,
    /// Inclusive range of outage lengths, in slots.
    pub outage_slots: (u64, u64),
    /// Probability that a slot's delivery to the memory is delayed.
    pub delay: f64,
    /// Inclusive range of delivery delays, in slots.
    pub delay_slots: (u64, u64),
}

impl FaultRates {
    /// All-zero rates: no faults ever fire.
    pub fn none() -> Self {
        FaultRates {
            sensor_dropout: 0.0,
            probe_failure: 0.0,
            outage: 0.0,
            outage_slots: (1, 1),
            delay: 0.0,
            delay_slots: (1, 1),
        }
    }

    /// A one-knob profile for sweeps: dropout, probe-failure, and delay
    /// probabilities all equal `intensity`; outages are 50× rarer but
    /// last 3–18 slots (30 s – 3 min at the paper's 10 s cadence).
    pub fn uniform(intensity: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&intensity),
            "fault intensity must be in [0, 1): {intensity}"
        );
        FaultRates {
            sensor_dropout: intensity,
            probe_failure: intensity,
            outage: intensity / 50.0,
            outage_slots: (3, 18),
            delay: intensity,
            delay_slots: (1, 5),
        }
    }

    fn is_zero(&self) -> bool {
        self.sensor_dropout == 0.0
            && self.probe_failure == 0.0
            && self.outage == 0.0
            && self.delay == 0.0
    }
}

impl Default for FaultRates {
    fn default() -> Self {
        FaultRates::none()
    }
}

/// A deterministic fault schedule for a whole grid: seed + rates.
///
/// The plan itself is cheap to copy; per-host streams are materialized
/// with [`FaultPlan::host_faults`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    rates: FaultRates,
    active: bool,
}

impl FaultPlan {
    /// The inert plan: no faults, no RNG draws, bit-identical behavior
    /// to a fault-unaware build.
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            rates: FaultRates::none(),
            active: false,
        }
    }

    /// A seeded plan with the given rates. Zero rates still count as
    /// inert — no RNG is consumed.
    pub fn seeded(seed: u64, rates: FaultRates) -> Self {
        FaultPlan {
            seed,
            rates,
            active: !rates.is_zero(),
        }
    }

    /// True when this plan can never inject a fault.
    pub fn is_none(&self) -> bool {
        !self.active
    }

    /// The per-slot rates this plan draws from.
    pub fn rates(&self) -> &FaultRates {
        &self.rates
    }

    /// Materialize the deterministic fault stream for one host. Streams
    /// depend only on `(plan seed, host name)`, never on registration
    /// order or thread placement.
    pub fn host_faults(&self, host_name: &str) -> HostFaults {
        if !self.active {
            return HostFaults::inert();
        }
        HostFaults {
            rng: Some(Rng::new(fnv1a(host_name) ^ self.seed ^ FAULT_SALT)),
            rates: self.rates,
            down_until: None,
        }
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

/// Everything that can go wrong with one measurement slot on one host.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SlotFaults {
    /// The host is powered off this slot: no measurements at all.
    pub outage: bool,
    /// The host comes back up this slot; sensors see a freshly booted
    /// kernel (the monitor must reset stateful sensors).
    pub reboot: bool,
    /// The loadavg reading for this slot is lost.
    pub drop_load: bool,
    /// The vmstat reading for this slot is lost.
    pub drop_vmstat: bool,
    /// Number of probe attempts that fail before one succeeds (only
    /// nonzero on probe slots). The sensor retries with backoff up to
    /// its retry budget; attempts beyond the budget abandon the probe.
    pub failed_probe_attempts: u32,
    /// Delivery of this slot's measurements is postponed by this many
    /// slots (0 = on time). Late measurements arrive out of order.
    pub delay_slots: u64,
}

impl SlotFaults {
    /// True when nothing at all is wrong with this slot.
    pub fn is_clear(&self) -> bool {
        *self == SlotFaults::default()
    }
}

/// Cap on how many failing probe attempts a single slot can schedule;
/// keeps the geometric draw bounded whatever the failure rate.
pub const MAX_PROBE_ATTEMPTS: u32 = 8;

/// The materialized fault stream for one host.
///
/// Call [`HostFaults::slot`] once per slot, in slot order. Each call
/// consumes a deterministic number of RNG draws, so the stream is a
/// pure function of the plan seed and host name.
#[derive(Debug, Clone)]
pub struct HostFaults {
    rng: Option<Rng>,
    rates: FaultRates,
    /// While `Some(s)`, the host is down and reboots at slot `s`.
    down_until: Option<u64>,
}

impl HostFaults {
    /// A stream that never faults and never touches an RNG.
    pub fn inert() -> Self {
        HostFaults {
            rng: None,
            rates: FaultRates::none(),
            down_until: None,
        }
    }

    /// True when this stream can never inject a fault.
    pub fn is_inert(&self) -> bool {
        self.rng.is_none()
    }

    /// Draw the faults for `slot`. `probe_slot` marks slots where the
    /// hybrid sensor runs its probe; probe-failure draws happen only
    /// there so passive-only slots stay cheap and streams stay aligned.
    pub fn slot(&mut self, slot: u64, probe_slot: bool) -> SlotFaults {
        let Some(rng) = self.rng.as_mut() else {
            return SlotFaults::default();
        };
        let mut f = SlotFaults::default();

        // Outage state machine: while down, no other draws happen — a
        // powered-off host cannot drop readings or fail probes.
        if let Some(up_at) = self.down_until {
            if slot < up_at {
                f.outage = true;
                return f;
            }
            self.down_until = None;
            f.reboot = true;
            // The reboot slot produces measurements again; fall through
            // to the per-slot draws below.
        } else if rng.chance(self.rates.outage) {
            let (lo, hi) = self.rates.outage_slots;
            let span = lo + rng.below(hi - lo + 1);
            self.down_until = Some(slot + span);
            f.outage = true;
            return f;
        }

        f.drop_load = rng.chance(self.rates.sensor_dropout);
        f.drop_vmstat = rng.chance(self.rates.sensor_dropout);
        if probe_slot {
            while f.failed_probe_attempts < MAX_PROBE_ATTEMPTS
                && rng.chance(self.rates.probe_failure)
            {
                f.failed_probe_attempts += 1;
            }
        }
        if rng.chance(self.rates.delay) {
            let (lo, hi) = self.rates.delay_slots;
            f.delay_slots = lo + rng.below(hi - lo + 1);
        }
        f
    }
}

/// The delivery-delay transform of the event pipeline: measurements a
/// [`SlotFaults::delay_slots`] fault held back, redelivered when their
/// due slot commits.
///
/// This is where delayed/out-of-order delivery lives as an event-stream
/// transform rather than being hand-threaded through each layer: the
/// commit stage `admit`s a delayed payload with its due slot and
/// `release`s everything due at the top of each slot's commit. Payloads
/// come back in admission order (FIFO among equally-due items), so
/// redelivery order — and therefore which late measurements the memory
/// still accepts — is a pure function of the fault stream.
#[derive(Debug, Clone)]
pub struct DelayLine<P> {
    pending: Vec<(u64, P)>,
}

impl<P> Default for DelayLine<P> {
    fn default() -> Self {
        Self::new()
    }
}

impl<P> DelayLine<P> {
    /// An empty delay line.
    pub fn new() -> Self {
        DelayLine {
            pending: Vec::new(),
        }
    }

    /// Number of payloads currently in flight.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// True when nothing is in flight.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Holds a payload back until slot `due` commits.
    pub fn admit(&mut self, due: u64, payload: P) {
        self.pending.push((due, payload));
    }

    /// Delivers every payload whose due slot is at or before `slot`, in
    /// admission order, removing them from the line.
    pub fn release(&mut self, slot: u64, mut deliver: impl FnMut(P)) {
        let mut i = 0;
        while i < self.pending.len() {
            if self.pending[i].0 > slot {
                i += 1;
                continue;
            }
            let (_, payload) = self.pending.remove(i);
            deliver(payload);
        }
    }
}

/// Counters for everything the fault layer did and how the measurement
/// path absorbed it. Additive: aggregate per-host stats with
/// [`FaultStats::merge`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Slots processed (per host-slot, all hosts summed).
    pub slots: u64,
    /// Measurements committed to the memory on time.
    pub delivered: u64,
    /// Explicit gaps recorded (series-slots with no reading).
    pub gaps: u64,
    /// Slots spent in a host outage.
    pub outage_slots: u64,
    /// Reboots observed.
    pub reboots: u64,
    /// Probe attempts that failed (before retry or abandonment).
    pub probe_attempts_failed: u64,
    /// Probe cycles abandoned after exhausting retries/deadline.
    pub probes_abandoned: u64,
    /// Hybrid slots served by the cross-sensor fallback (one passive
    /// source lost, the other substituted).
    pub fallback_cross: u64,
    /// Slots whose delivery was postponed.
    pub delayed: u64,
    /// Late measurements that still arrived in order and were stored.
    pub late_delivered: u64,
    /// Late measurements rejected as out-of-order by the memory.
    pub late_dropped: u64,
}

impl FaultStats {
    /// Sum another stats block into this one.
    pub fn merge(&mut self, other: &FaultStats) {
        self.slots += other.slots;
        self.delivered += other.delivered;
        self.gaps += other.gaps;
        self.outage_slots += other.outage_slots;
        self.reboots += other.reboots;
        self.probe_attempts_failed += other.probe_attempts_failed;
        self.probes_abandoned += other.probes_abandoned;
        self.fallback_cross += other.fallback_cross;
        self.delayed += other.delayed;
        self.late_delivered += other.late_delivered;
        self.late_dropped += other.late_dropped;
    }
}

/// Salt for the crash-plan RNG stream (independent of measurement-path
/// fault streams even under the same base seed).
const CRASH_SALT: u64 = 0xDEAD_70A5_7C4A_5E5D;

/// What a process crash leaves behind in the durable state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashKind {
    /// The process dies between journal writes: the WAL ends cleanly on
    /// a record boundary.
    CleanKill,
    /// The process dies mid-write: the final WAL record is torn partway
    /// through (the classic crash artifact recovery must absorb).
    TornRecord,
    /// The crash interrupts a snapshot write on a filesystem without
    /// atomic rename: the snapshot file is cut short and must be
    /// rejected, falling back to WAL replay.
    TruncatedSnapshot,
}

/// One planned process crash: where in the run it strikes and what it
/// leaves torn.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrashEvent {
    /// Fraction of the uninterrupted run's WAL the process lives
    /// through, in `(0, 1)`.
    pub fraction: f64,
    /// What the crash damages.
    pub kind: CrashKind,
}

impl CrashEvent {
    /// The raw byte offset into a `len`-byte image (WAL or snapshot)
    /// where the crash cuts it. A cut mid-record *is* the torn-record
    /// artifact; recovery keeps everything before it.
    pub fn cut_at(&self, len: usize) -> usize {
        ((len as f64) * self.fraction) as usize
    }
}

/// A seeded schedule of process crashes for recovery drills: each draw
/// yields a kill point and a damage kind, deterministically from the
/// seed — so a "kill/restart" sweep is reproducible byte for byte and
/// diffable across thread counts in CI, like every other fault stream
/// in this crate.
#[derive(Debug, Clone)]
pub struct CrashPlan {
    rng: Rng,
}

impl CrashPlan {
    /// A crash schedule derived from `seed`.
    pub fn seeded(seed: u64) -> Self {
        CrashPlan {
            rng: Rng::new(seed ^ CRASH_SALT),
        }
    }

    /// Draws the next crash: a kill fraction in `[0.05, 0.95]` and a
    /// damage kind cycling over all three with equal probability.
    pub fn next_event(&mut self) -> CrashEvent {
        let fraction = self.rng.range_f64(0.05, 0.95);
        let kind = match self.rng.below(3) {
            0 => CrashKind::CleanKill,
            1 => CrashKind::TornRecord,
            _ => CrashKind::TruncatedSnapshot,
        };
        CrashEvent { fraction, kind }
    }

    /// Flips one seeded bit in `bytes` (bit-rot drills), returning the
    /// `(byte, bit)` flipped, or `None` on an empty slice.
    pub fn flip_bit(&mut self, bytes: &mut [u8]) -> Option<(usize, u8)> {
        if bytes.is_empty() {
            return None;
        }
        let byte = self.rng.below(bytes.len() as u64) as usize;
        let bit = self.rng.below(8) as u8;
        bytes[byte] ^= 1 << bit;
        Some((byte, bit))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(plan: &FaultPlan, host: &str, slots: u64) -> Vec<SlotFaults> {
        let mut hf = plan.host_faults(host);
        (0..slots).map(|s| hf.slot(s, s % 6 == 0)).collect()
    }

    #[test]
    fn none_plan_is_inert_and_draws_nothing() {
        let plan = FaultPlan::none();
        assert!(plan.is_none());
        let mut hf = plan.host_faults("conundrum");
        assert!(hf.is_inert());
        for s in 0..500 {
            assert!(hf.slot(s, s % 6 == 0).is_clear());
        }
    }

    #[test]
    fn zero_rates_count_as_inert() {
        assert!(FaultPlan::seeded(7, FaultRates::none()).is_none());
        assert!(!FaultPlan::seeded(7, FaultRates::uniform(0.1)).is_none());
    }

    #[test]
    fn streams_are_deterministic_per_host() {
        let plan = FaultPlan::seeded(42, FaultRates::uniform(0.2));
        assert_eq!(drain(&plan, "kongo", 1000), drain(&plan, "kongo", 1000));
        assert_ne!(drain(&plan, "kongo", 1000), drain(&plan, "axp7", 1000));
        let other_seed = FaultPlan::seeded(43, FaultRates::uniform(0.2));
        assert_ne!(
            drain(&plan, "kongo", 1000),
            drain(&other_seed, "kongo", 1000)
        );
    }

    #[test]
    fn outages_span_then_reboot_once() {
        let plan = FaultPlan::seeded(9, FaultRates::uniform(0.3));
        let faults = drain(&plan, "thing2", 4000);
        let mut saw_outage = false;
        let mut down = false;
        for (i, f) in faults.iter().enumerate() {
            if f.reboot {
                assert!(down, "reboot without preceding outage at slot {i}");
                assert!(!f.outage, "reboot slot must produce measurements");
                down = false;
            } else if f.outage {
                saw_outage = true;
                assert!(
                    !f.drop_load && f.failed_probe_attempts == 0 && f.delay_slots == 0,
                    "outage slots draw no other faults"
                );
                down = true;
            }
        }
        assert!(saw_outage, "0.6% per-slot outage rate over 4000 slots");
        // Outage lengths stay within the configured range.
        let (lo, hi) = FaultRates::uniform(0.3).outage_slots;
        let mut run = 0u64;
        for f in &faults {
            if f.outage && !f.reboot {
                run += 1;
            } else if f.reboot {
                assert!((lo..=hi).contains(&run), "outage length {run}");
                run = 0;
            } else {
                run = 0;
            }
        }
    }

    #[test]
    fn probe_failures_only_on_probe_slots_and_bounded() {
        let plan = FaultPlan::seeded(3, FaultRates::uniform(0.4));
        let mut hf = plan.host_faults("sitar");
        for s in 0..2000 {
            let f = hf.slot(s, s % 6 == 0);
            if s % 6 != 0 {
                assert_eq!(f.failed_probe_attempts, 0);
            }
            assert!(f.failed_probe_attempts <= MAX_PROBE_ATTEMPTS);
        }
    }

    #[test]
    fn delays_respect_range() {
        let plan = FaultPlan::seeded(11, FaultRates::uniform(0.5));
        let (lo, hi) = plan.rates().delay_slots;
        let mut saw_delay = false;
        for f in drain(&plan, "jazz", 2000) {
            if f.delay_slots > 0 {
                saw_delay = true;
                assert!((lo..=hi).contains(&f.delay_slots));
            }
        }
        assert!(saw_delay);
    }

    #[test]
    fn higher_intensity_means_more_faults() {
        let count = |i: f64| {
            let plan = FaultPlan::seeded(5, FaultRates::uniform(i));
            drain(&plan, "pedro", 3000)
                .iter()
                .filter(|f| !f.is_clear())
                .count()
        };
        assert!(count(0.05) < count(0.3));
    }

    #[test]
    fn stats_merge_adds_fields() {
        let mut a = FaultStats {
            slots: 10,
            gaps: 2,
            ..FaultStats::default()
        };
        let b = FaultStats {
            slots: 5,
            gaps: 1,
            reboots: 1,
            ..FaultStats::default()
        };
        a.merge(&b);
        assert_eq!(a.slots, 15);
        assert_eq!(a.gaps, 3);
        assert_eq!(a.reboots, 1);
    }

    #[test]
    #[should_panic(expected = "fault intensity")]
    fn uniform_rejects_out_of_range() {
        let _ = FaultRates::uniform(1.0);
    }

    #[test]
    fn delay_line_releases_due_payloads_in_admission_order() {
        let mut line = DelayLine::new();
        assert!(line.is_empty());
        line.admit(3, "a");
        line.admit(2, "b");
        line.admit(3, "c");
        line.admit(9, "d");
        assert_eq!(line.len(), 4);
        let mut out = Vec::new();
        line.release(1, |p| out.push(p));
        assert!(out.is_empty(), "nothing due yet");
        line.release(3, |p| out.push(p));
        // Everything due by slot 3, in the order it was admitted.
        assert_eq!(out, vec!["a", "b", "c"]);
        assert_eq!(line.len(), 1);
        line.release(100, |p| out.push(p));
        assert_eq!(out, vec!["a", "b", "c", "d"]);
        assert!(line.is_empty());
    }

    #[test]
    fn crash_plan_is_deterministic_and_in_range() {
        let draw = |seed| {
            let mut plan = CrashPlan::seeded(seed);
            (0..20).map(|_| plan.next_event()).collect::<Vec<_>>()
        };
        let a = draw(7);
        assert_eq!(a, draw(7), "same seed, same schedule");
        assert_ne!(a, draw(8), "different seed, different schedule");
        let mut kinds = [false; 3];
        for e in &a {
            assert!((0.05..=0.95).contains(&e.fraction), "{}", e.fraction);
            kinds[match e.kind {
                CrashKind::CleanKill => 0,
                CrashKind::TornRecord => 1,
                CrashKind::TruncatedSnapshot => 2,
            }] = true;
        }
        assert!(kinds.iter().all(|&k| k), "20 draws cover all kinds");
        // cut_at maps fractions into the image.
        assert_eq!(a[0].cut_at(0), 0);
        assert!(a[0].cut_at(1000) <= 950);
    }

    #[test]
    fn flip_bit_is_seeded_and_reversible() {
        let mut plan = CrashPlan::seeded(3);
        let mut bytes = vec![0u8; 64];
        let (byte, bit) = plan.flip_bit(&mut bytes).expect("non-empty");
        assert_eq!(bytes[byte], 1 << bit);
        bytes[byte] ^= 1 << bit;
        assert!(bytes.iter().all(|&b| b == 0));
        assert_eq!(CrashPlan::seeded(1).flip_bit(&mut []), None);
    }
}
