//! Client-side failover across a replica set.
//!
//! A [`FailoverClient`] holds an ordered endpoint list — primary
//! first, replicas after — and routes each call to its current
//! preferred endpoint. A transport-level failure marks the endpoint
//! unhealthy and moves on to the next in ring order, dialing lazily;
//! only when every endpoint has failed for one call does the caller
//! see an error. Typed server errors pass straight through: the
//! exchange worked, so the endpoint is healthy and stays preferred.
//!
//! Each endpoint's underlying [`NwsClient`] keeps its own capped
//! exponential backoff, seeded per endpoint from
//! [`ClientConfig::backoff_seed`] xor the endpoint index, so a fleet
//! of failover clients sharing a config still decorrelates.

use crate::client::{ClientConfig, NwsClient};
use crate::transport::{ServeError, Transport};
use nws_wire::{Request, Response, WireError};
use std::net::SocketAddr;

/// Health bookkeeping for one endpoint of the set.
struct Endpoint {
    addr: SocketAddr,
    client: Option<NwsClient>,
    /// Transport failures since the last successful exchange.
    consecutive_failures: u32,
}

/// A typed client that fails over across an ordered replica set.
pub struct FailoverClient {
    endpoints: Vec<Endpoint>,
    config: ClientConfig,
    /// Index of the endpoint answering calls right now.
    preferred: usize,
    /// Calls that had to leave their first endpoint.
    failovers: u64,
}

impl FailoverClient {
    /// Builds a client over `addrs` (primary first). Nothing is dialed
    /// until the first call.
    pub fn new(addrs: &[SocketAddr], config: ClientConfig) -> Self {
        assert!(
            !addrs.is_empty(),
            "a replica set needs at least one endpoint"
        );
        let endpoints = addrs
            .iter()
            .map(|&addr| Endpoint {
                addr,
                client: None,
                consecutive_failures: 0,
            })
            .collect();
        Self {
            endpoints,
            config,
            preferred: 0,
            failovers: 0,
        }
    }

    /// The endpoint currently answering calls.
    pub fn preferred(&self) -> SocketAddr {
        self.endpoints[self.preferred].addr
    }

    /// Calls that had to fail over to another endpoint.
    pub fn failovers(&self) -> u64 {
        self.failovers
    }

    /// Repoints endpoint `idx` at a new address — the operator move
    /// after a replica restarts on a fresh socket. Drops the slot's
    /// connection and clears its health; the preference order is
    /// unchanged.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range for the replica set.
    pub fn set_endpoint(&mut self, idx: usize, addr: SocketAddr) {
        let ep = &mut self.endpoints[idx];
        ep.addr = addr;
        ep.client = None;
        ep.consecutive_failures = 0;
    }

    /// Transport failures recorded against each endpoint since its
    /// last successful exchange, in constructor order.
    pub fn health(&self) -> Vec<u32> {
        self.endpoints
            .iter()
            .map(|e| e.consecutive_failures)
            .collect()
    }

    /// One attempt against endpoint `idx`: dial if needed, exchange.
    fn try_endpoint(
        &mut self,
        idx: usize,
        req: &Request,
    ) -> Result<(Response, Vec<u8>), ServeError> {
        // Each endpoint's client gets its own jitter stream.
        let mut config = self.config;
        config.backoff_seed ^= idx as u64;
        let ep = &mut self.endpoints[idx];
        if ep.client.is_none() {
            ep.client = Some(NwsClient::connect(ep.addr, config)?);
        }
        let client = ep.client.as_mut().expect("just ensured");
        client.call_raw(req)
    }
}

impl Transport for FailoverClient {
    fn call_raw(&mut self, req: &Request) -> Result<(Response, Vec<u8>), ServeError> {
        let n = self.endpoints.len();
        let start = self.preferred;
        let mut last_err = None;
        for step in 0..n {
            let idx = (start + step) % n;
            match self.try_endpoint(idx, req) {
                Ok((Response::Error(e), _)) if e.code == nws_wire::ErrorCode::Overloaded => {
                    // The server is at capacity and closes right after
                    // the refusal frame — drop the connection and let a
                    // replica absorb the call. Only if every endpoint
                    // is saturated does the caller see the overload.
                    let ep = &mut self.endpoints[idx];
                    ep.client = None;
                    ep.consecutive_failures += 1;
                    last_err = Some(ServeError::Remote(e));
                }
                Ok(ok) => {
                    self.endpoints[idx].consecutive_failures = 0;
                    if idx != start {
                        self.failovers += 1;
                    }
                    self.preferred = idx;
                    return Ok(ok);
                }
                Err(ServeError::Wire(e)) => {
                    // This endpoint is down or unreachable; drop its
                    // connection, mark it, move along the ring.
                    let ep = &mut self.endpoints[idx];
                    ep.client = None;
                    ep.consecutive_failures += 1;
                    last_err = Some(ServeError::Wire(e));
                }
                // The endpoint answered: a typed error or a wrong
                // variant is an application-level answer, not a health
                // signal worth leaving the endpoint over.
                Err(e) => return Err(e),
            }
        }
        Err(last_err.unwrap_or(ServeError::Wire(WireError::Truncated)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::GridState;
    use crate::tcp::{NwsServer, ServerConfig};
    use nws_grid::{GridMonitor, GridMonitorConfig};
    use nws_sim::HostProfile;
    use std::time::Duration;

    fn quick_config() -> ClientConfig {
        ClientConfig {
            io_timeout: Duration::from_millis(500),
            retries: 0,
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(5),
            ..ClientConfig::default()
        }
    }

    fn warm_server() -> NwsServer {
        let mut grid = GridMonitor::new(
            &[HostProfile::Thing1, HostProfile::Thing2],
            31,
            GridMonitorConfig::default(),
        );
        grid.run_steps(40);
        NwsServer::spawn(GridState::new(grid), ServerConfig::default()).expect("bind")
    }

    #[test]
    fn healthy_primary_answers_without_failover() {
        let server = warm_server();
        let mut client = FailoverClient::new(&[server.addr()], quick_config());
        let fc = client.forecast("thing1").expect("forecast");
        assert!((0.0..=1.0).contains(&fc.value));
        assert_eq!(client.failovers(), 0);
        assert_eq!(client.health(), vec![0]);
    }

    #[test]
    fn dead_primary_fails_over_to_the_replica_and_sticks() {
        let dead = warm_server();
        let dead_addr = dead.addr();
        drop(dead); // shut down: the primary is gone
        std::thread::sleep(Duration::from_millis(50));
        let replica = warm_server(); // stands in for a caught-up replica
        let mut client = FailoverClient::new(&[dead_addr, replica.addr()], quick_config());
        let fc = client.forecast("thing1").expect("served by the replica");
        assert!((0.0..=1.0).contains(&fc.value));
        assert_eq!(client.failovers(), 1);
        assert_eq!(client.preferred(), replica.addr());
        assert!(client.health()[0] >= 1, "primary marked unhealthy");
        // The next call goes straight to the replica: no new failover.
        client.stats().expect("stats");
        assert_eq!(client.failovers(), 1);
    }

    #[test]
    fn all_endpoints_dead_is_an_error_not_a_hang() {
        let (a, b) = {
            let s1 = warm_server();
            let s2 = warm_server();
            (s1.addr(), s2.addr())
        };
        std::thread::sleep(Duration::from_millis(50));
        let mut client = FailoverClient::new(&[a, b], quick_config());
        match client.stats() {
            Err(ServeError::Wire(_)) => {}
            other => panic!("wrong result: {other:?}"),
        }
        assert!(client.health().iter().all(|&f| f >= 1));
    }

    #[test]
    fn overloaded_primary_fails_over_to_the_replica() {
        let mut grid = GridMonitor::new(
            &[HostProfile::Thing1, HostProfile::Thing2],
            31,
            GridMonitorConfig::default(),
        );
        grid.run_steps(40);
        // A primary with no capacity refuses everything with a typed
        // Overloaded; the client should absorb that on the replica.
        let primary = NwsServer::spawn(
            GridState::new(grid),
            ServerConfig {
                max_connections: 0,
                ..ServerConfig::default()
            },
        )
        .expect("bind");
        let replica = warm_server();
        let mut client = FailoverClient::new(&[primary.addr(), replica.addr()], quick_config());
        let fc = client.forecast("thing1").expect("served by the replica");
        assert!((0.0..=1.0).contains(&fc.value));
        assert_eq!(client.failovers(), 1);
        assert_eq!(client.preferred(), replica.addr());
    }

    #[test]
    fn a_repointed_replica_slot_catches_the_next_failover() {
        let primary = warm_server();
        let doomed = warm_server();
        let mut client = FailoverClient::new(&[primary.addr(), doomed.addr()], quick_config());
        client.stats().expect("primary serves");
        // The replica dies and comes back on a fresh socket; the
        // operator repoints slot 1 before anything else goes wrong.
        drop(doomed);
        let restarted = warm_server();
        client.set_endpoint(1, restarted.addr());
        assert_eq!(client.health(), vec![0, 0], "repointing clears health");
        // Now the primary dies too: the failover must land on the
        // restarted replica, not the stale address.
        drop(primary);
        std::thread::sleep(Duration::from_millis(50));
        client.stats().expect("served by the restarted replica");
        assert_eq!(client.failovers(), 1);
        assert_eq!(client.preferred(), restarted.addr());
    }

    #[test]
    fn typed_errors_do_not_trigger_failover() {
        let s1 = warm_server();
        let s2 = warm_server();
        let mut client = FailoverClient::new(&[s1.addr(), s2.addr()], quick_config());
        match client.forecast("nonesuch") {
            Err(ServeError::Remote(e)) => {
                assert_eq!(e.code, nws_wire::ErrorCode::UnknownHost)
            }
            other => panic!("wrong result: {other:?}"),
        }
        assert_eq!(client.failovers(), 0);
        assert_eq!(client.preferred(), s1.addr());
    }
}
