//! The typed TCP client, with retry-and-reconnect.
//!
//! A forecast query is idempotent, so a failed exchange — the server
//! idled out the connection, the process restarted, a write hit a dead
//! socket — is safely retried on a fresh connection. The client
//! remembers the address, tears down the stream on any wire-level
//! failure, and redials up to [`ClientConfig::retries`] times before
//! giving up. Typed server errors ([`ServeError::Remote`]) are *not*
//! retried: the exchange worked, the answer just wasn't the happy path.

use crate::transport::{ServeError, Transport};
use nws_wire::{encode_request_frame, read_response, Request, Response, WireError};
use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Tunables for [`NwsClient`].
#[derive(Debug, Clone, Copy)]
pub struct ClientConfig {
    /// Socket read/write deadline per exchange.
    pub io_timeout: Duration,
    /// Reconnect-and-resend attempts after a failed exchange.
    pub retries: u32,
}

impl Default for ClientConfig {
    fn default() -> Self {
        Self {
            io_timeout: Duration::from_secs(5),
            retries: 2,
        }
    }
}

/// A connected forecast client.
pub struct NwsClient {
    addr: SocketAddr,
    config: ClientConfig,
    conn: Option<Conn>,
    /// Exchanges that needed at least one reconnect.
    reconnects: u64,
    /// Request frames are encoded into this reusable scratch, so a
    /// steady stream of queries does not allocate per exchange.
    scratch: Vec<u8>,
}

struct Conn {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl NwsClient {
    /// Dials the server and verifies the connection can be set up.
    pub fn connect(addr: SocketAddr, config: ClientConfig) -> Result<Self, ServeError> {
        let mut client = Self {
            addr,
            config,
            conn: None,
            reconnects: 0,
            scratch: Vec::new(),
        };
        client.conn = Some(client.dial()?);
        Ok(client)
    }

    /// Reconnect-and-resend cycles performed so far.
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    fn dial(&self) -> Result<Conn, ServeError> {
        let stream =
            TcpStream::connect(self.addr).map_err(|e| ServeError::Wire(WireError::Io(e)))?;
        stream
            .set_read_timeout(Some(self.config.io_timeout))
            .and_then(|()| stream.set_write_timeout(Some(self.config.io_timeout)))
            .map_err(|e| ServeError::Wire(WireError::Io(e)))?;
        let reader_stream = stream
            .try_clone()
            .map_err(|e| ServeError::Wire(WireError::Io(e)))?;
        Ok(Conn {
            reader: BufReader::new(reader_stream),
            writer: BufWriter::new(stream),
        })
    }

    /// One request/response exchange on the current connection. The
    /// request frame arrives pre-encoded in the caller's scratch buffer.
    fn exchange(conn: &mut Conn, frame: &[u8]) -> Result<(Response, Vec<u8>), ServeError> {
        conn.writer.write_all(frame).map_err(WireError::from)?;
        conn.writer.flush().map_err(WireError::from)?;
        Ok(read_response(&mut conn.reader)?)
    }
}

impl Transport for NwsClient {
    fn call_raw(&mut self, req: &Request) -> Result<(Response, Vec<u8>), ServeError> {
        encode_request_frame(&mut self.scratch, req);
        let mut attempts_left = self.config.retries + 1;
        loop {
            attempts_left -= 1;
            if self.conn.is_none() {
                match self.dial() {
                    Ok(c) => self.conn = Some(c),
                    Err(_) if attempts_left > 0 => {
                        self.reconnects += 1;
                        continue;
                    }
                    Err(e) => return Err(e),
                }
            }
            let conn = self.conn.as_mut().expect("connection just ensured");
            match Self::exchange(conn, &self.scratch) {
                Ok(ok) => return Ok(ok),
                // Transport-level failure: the connection is suspect.
                // Drop it and retry on a fresh one if budget remains.
                Err(ServeError::Wire(_)) if attempts_left > 0 => {
                    self.conn = None;
                    self.reconnects += 1;
                }
                Err(e) => {
                    self.conn = None;
                    return Err(e);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::GridState;
    use crate::tcp::{NwsServer, ServerConfig};
    use nws_grid::{GridMonitor, GridMonitorConfig};
    use nws_sim::HostProfile;

    fn warm_server(config: ServerConfig) -> NwsServer {
        let mut grid = GridMonitor::new(
            &[HostProfile::Thing1, HostProfile::Thing2],
            31,
            GridMonitorConfig::default(),
        );
        grid.run_steps(40);
        NwsServer::spawn(GridState::new(grid), config).expect("bind localhost")
    }

    #[test]
    fn reconnects_after_the_server_idles_out_the_connection() {
        // A tiny read deadline makes the server hang up on any pause.
        let server = warm_server(ServerConfig {
            read_timeout: Duration::from_millis(50),
            ..ServerConfig::default()
        });
        let mut client =
            NwsClient::connect(server.addr(), ClientConfig::default()).expect("connect");
        let first = client.forecast("thing1").expect("first call");
        // Outlive the server's read deadline; the old stream is dead.
        std::thread::sleep(Duration::from_millis(200));
        let second = client.forecast("thing1").expect("retried call");
        assert_eq!(first, second, "idempotent query, cached answer");
        assert!(client.reconnects() >= 1, "the retry path must have fired");
    }

    #[test]
    fn typed_errors_are_not_retried() {
        let server = warm_server(ServerConfig::default());
        let mut client =
            NwsClient::connect(server.addr(), ClientConfig::default()).expect("connect");
        match client.forecast("nonesuch") {
            Err(ServeError::Remote(e)) => {
                assert_eq!(e.code, nws_wire::ErrorCode::UnknownHost);
            }
            other => panic!("wrong result: {other:?}"),
        }
        assert_eq!(client.reconnects(), 0);
    }

    #[test]
    fn connect_to_a_dead_port_fails_cleanly() {
        let addr = {
            let server = warm_server(ServerConfig::default());
            server.addr()
            // Server dropped (and shut down) here.
        };
        std::thread::sleep(Duration::from_millis(50));
        match NwsClient::connect(
            addr,
            ClientConfig {
                retries: 0,
                ..ClientConfig::default()
            },
        ) {
            Err(ServeError::Wire(_)) => {}
            Ok(mut c) => {
                // The OS may still complete the handshake from a stale
                // backlog; the first actual exchange must then fail.
                assert!(c.stats().is_err());
            }
            Err(e) => panic!("unexpected error variant: {e}"),
        }
    }
}
