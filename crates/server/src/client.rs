//! The typed TCP client, with retry-and-reconnect behind capped
//! exponential backoff.
//!
//! A forecast query is idempotent, so a failed exchange — the server
//! idled out the connection, the process restarted, a write hit a dead
//! socket — is safely retried on a fresh connection. The client
//! remembers the address, tears down the stream on any wire-level
//! failure, and redials up to [`ClientConfig::retries`] times before
//! giving up. Successive retries within one call wait
//! `min(backoff_cap, backoff_base << attempt)` scaled by a seeded
//! jitter factor in `[0.5, 1.0)`, so a thundering herd of clients
//! hammering a restarting server decorrelates deterministically (the
//! jitter stream is a pure function of [`ClientConfig::backoff_seed`]).
//! Typed server errors ([`ServeError::Remote`]) are *not* retried: the
//! exchange worked, the answer just wasn't the happy path.

use crate::transport::{ServeError, Transport};
use nws_wire::{encode_request_frame, read_response, Request, Response, WireError};
use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Tunables for [`NwsClient`].
#[derive(Debug, Clone, Copy)]
pub struct ClientConfig {
    /// Socket read/write deadline per exchange.
    pub io_timeout: Duration,
    /// Reconnect-and-resend attempts after a failed exchange.
    pub retries: u32,
    /// Delay before the first retry; doubles every attempt after that.
    pub backoff_base: Duration,
    /// Ceiling the doubling saturates at.
    pub backoff_cap: Duration,
    /// Seed for the deterministic jitter stream. Give each client of a
    /// fleet its own seed so their retry schedules decorrelate.
    pub backoff_seed: u64,
}

impl Default for ClientConfig {
    fn default() -> Self {
        Self {
            io_timeout: Duration::from_secs(5),
            retries: 2,
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_secs(1),
            backoff_seed: 0x5EED_BACC_0FF5_EED5,
        }
    }
}

/// Capped exponential backoff with a seeded, deterministic jitter
/// stream: attempt `n` waits `min(cap, base * 2^n) * u` where `u` is
/// drawn from `[0.5, 1.0)` by an xorshift64* generator. Two schedules
/// built from the same seed produce identical delays.
#[derive(Debug, Clone)]
pub struct Backoff {
    base: Duration,
    cap: Duration,
    state: u64,
}

impl Backoff {
    /// Builds a schedule; a zero seed is remapped so the generator
    /// never sticks at its one fixed point.
    pub fn new(base: Duration, cap: Duration, seed: u64) -> Self {
        Self {
            base,
            cap,
            state: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
        }
    }

    /// A schedule from client tunables.
    pub fn from_config(config: &ClientConfig) -> Self {
        Self::new(config.backoff_base, config.backoff_cap, config.backoff_seed)
    }

    /// The next jitter factor in `[0.5, 1.0)` (xorshift64*).
    fn jitter(&mut self) -> f64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        let bits = x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11;
        0.5 + 0.5 * (bits as f64 / (1u64 << 53) as f64)
    }

    /// The delay to wait before retry number `attempt` (0-based).
    /// Advances the jitter stream exactly once per call.
    pub fn delay(&mut self, attempt: u32) -> Duration {
        let unjittered = (self.base.as_nanos() as f64) * 2f64.powi(attempt.min(63) as i32);
        let capped = unjittered.min(self.cap.as_nanos() as f64);
        Duration::from_nanos((capped * self.jitter()) as u64)
    }
}

/// A connected forecast client.
pub struct NwsClient {
    addr: SocketAddr,
    config: ClientConfig,
    conn: Option<Conn>,
    /// Exchanges that needed at least one reconnect.
    reconnects: u64,
    /// The retry-delay schedule; its jitter stream persists across
    /// calls so repeated failures keep decorrelating.
    backoff: Backoff,
    /// Request frames are encoded into this reusable scratch, so a
    /// steady stream of queries does not allocate per exchange.
    scratch: Vec<u8>,
}

struct Conn {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl NwsClient {
    /// Dials the server and verifies the connection can be set up.
    pub fn connect(addr: SocketAddr, config: ClientConfig) -> Result<Self, ServeError> {
        let mut client = Self {
            addr,
            config,
            conn: None,
            reconnects: 0,
            backoff: Backoff::from_config(&config),
            scratch: Vec::new(),
        };
        client.conn = Some(client.dial()?);
        Ok(client)
    }

    /// Reconnect-and-resend cycles performed so far.
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    fn dial(&self) -> Result<Conn, ServeError> {
        let stream =
            TcpStream::connect(self.addr).map_err(|e| ServeError::Wire(WireError::Io(e)))?;
        stream
            .set_read_timeout(Some(self.config.io_timeout))
            .and_then(|()| stream.set_write_timeout(Some(self.config.io_timeout)))
            .map_err(|e| ServeError::Wire(WireError::Io(e)))?;
        let reader_stream = stream
            .try_clone()
            .map_err(|e| ServeError::Wire(WireError::Io(e)))?;
        Ok(Conn {
            reader: BufReader::new(reader_stream),
            writer: BufWriter::new(stream),
        })
    }

    /// One request/response exchange on the current connection. The
    /// request frame arrives pre-encoded in the caller's scratch buffer.
    fn exchange(conn: &mut Conn, frame: &[u8]) -> Result<(Response, Vec<u8>), ServeError> {
        conn.writer.write_all(frame).map_err(WireError::from)?;
        conn.writer.flush().map_err(WireError::from)?;
        Ok(read_response(&mut conn.reader)?)
    }
}

impl Transport for NwsClient {
    fn call_raw(&mut self, req: &Request) -> Result<(Response, Vec<u8>), ServeError> {
        encode_request_frame(&mut self.scratch, req);
        let mut attempts_left = self.config.retries + 1;
        // Retry index within this call: the delay doubles with it, but
        // a later healthy call starts over at the base delay.
        let mut attempt = 0u32;
        loop {
            attempts_left -= 1;
            if self.conn.is_none() {
                match self.dial() {
                    Ok(c) => self.conn = Some(c),
                    Err(_) if attempts_left > 0 => {
                        self.reconnects += 1;
                        std::thread::sleep(self.backoff.delay(attempt));
                        attempt += 1;
                        continue;
                    }
                    Err(e) => return Err(e),
                }
            }
            let conn = self.conn.as_mut().expect("connection just ensured");
            match Self::exchange(conn, &self.scratch) {
                Ok(ok) => return Ok(ok),
                // Transport-level failure: the connection is suspect.
                // Drop it and retry on a fresh one if budget remains.
                Err(ServeError::Wire(_)) if attempts_left > 0 => {
                    self.conn = None;
                    self.reconnects += 1;
                    std::thread::sleep(self.backoff.delay(attempt));
                    attempt += 1;
                }
                Err(e) => {
                    self.conn = None;
                    return Err(e);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::GridState;
    use crate::tcp::{NwsServer, ServerConfig};
    use nws_grid::{GridMonitor, GridMonitorConfig};
    use nws_sim::HostProfile;

    fn warm_server(config: ServerConfig) -> NwsServer {
        let mut grid = GridMonitor::new(
            &[HostProfile::Thing1, HostProfile::Thing2],
            31,
            GridMonitorConfig::default(),
        );
        grid.run_steps(40);
        NwsServer::spawn(GridState::new(grid), config).expect("bind localhost")
    }

    #[test]
    fn reconnects_after_the_server_idles_out_the_connection() {
        // A tiny read deadline makes the server hang up on any pause.
        let server = warm_server(ServerConfig {
            read_timeout: Duration::from_millis(50),
            ..ServerConfig::default()
        });
        let mut client =
            NwsClient::connect(server.addr(), ClientConfig::default()).expect("connect");
        let first = client.forecast("thing1").expect("first call");
        // Outlive the server's read deadline; the old stream is dead.
        std::thread::sleep(Duration::from_millis(200));
        let second = client.forecast("thing1").expect("retried call");
        assert_eq!(first, second, "idempotent query, cached answer");
        assert!(client.reconnects() >= 1, "the retry path must have fired");
    }

    #[test]
    fn typed_errors_are_not_retried() {
        let server = warm_server(ServerConfig::default());
        let mut client =
            NwsClient::connect(server.addr(), ClientConfig::default()).expect("connect");
        match client.forecast("nonesuch") {
            Err(ServeError::Remote(e)) => {
                assert_eq!(e.code, nws_wire::ErrorCode::UnknownHost);
            }
            other => panic!("wrong result: {other:?}"),
        }
        assert_eq!(client.reconnects(), 0);
    }

    #[test]
    fn backoff_is_capped_exponential_with_seeded_jitter() {
        let base = Duration::from_millis(10);
        let cap = Duration::from_millis(160);
        let mut a = Backoff::new(base, cap, 99);
        let mut b = Backoff::new(base, cap, 99);
        let mut c = Backoff::new(base, cap, 7);
        let da: Vec<_> = (0..8).map(|i| a.delay(i)).collect();
        let db: Vec<_> = (0..8).map(|i| b.delay(i)).collect();
        let dc: Vec<_> = (0..8).map(|i| c.delay(i)).collect();
        assert_eq!(da, db, "same seed, same schedule");
        assert_ne!(da, dc, "different seeds decorrelate");
        for (i, d) in da.iter().enumerate() {
            let unjittered = base.saturating_mul(1 << i).min(cap);
            assert!(*d < unjittered, "attempt {i}: {d:?} over ceiling");
            assert!(*d >= unjittered / 2, "attempt {i}: {d:?} under half");
        }
        // Late attempts saturate in the cap's jitter band.
        assert!(da[7] >= cap / 2 && da[7] < cap);
    }

    #[test]
    fn retries_against_a_dead_server_actually_wait() {
        let mut server = warm_server(ServerConfig::default());
        let config = ClientConfig {
            io_timeout: Duration::from_millis(500),
            retries: 2,
            backoff_base: Duration::from_millis(20),
            backoff_cap: Duration::from_millis(100),
            ..ClientConfig::default()
        };
        let mut client = NwsClient::connect(server.addr(), config).expect("connect");
        server.shutdown();
        drop(server);
        std::thread::sleep(Duration::from_millis(50));
        let started = std::time::Instant::now();
        assert!(client.stats().is_err(), "server is gone");
        let waited = started.elapsed();
        // Two retry delays at the bottom of the jitter band:
        // 20/2 + 40/2 = 30 ms of mandatory waiting.
        assert!(waited >= Duration::from_millis(30), "waited {waited:?}");
    }

    #[test]
    fn connect_to_a_dead_port_fails_cleanly() {
        let addr = {
            let server = warm_server(ServerConfig::default());
            server.addr()
            // Server dropped (and shut down) here.
        };
        std::thread::sleep(Duration::from_millis(50));
        match NwsClient::connect(
            addr,
            ClientConfig {
                retries: 0,
                ..ClientConfig::default()
            },
        ) {
            Err(ServeError::Wire(_)) => {}
            Ok(mut c) => {
                // The OS may still complete the handshake from a stale
                // backlog; the first actual exchange must then fail.
                assert!(c.stats().is_err());
            }
            Err(e) => panic!("unexpected error variant: {e}"),
        }
    }
}
