//! The forecast-serving subsystem: the NWS query path, reproduced.
//!
//! The paper's measurements exist to be *served* — the real Network
//! Weather Service runs sensors, memories, and forecasters as separate
//! processes that clients query over the network. This crate puts that
//! query path in front of the reproduction's [`GridMonitor`]:
//!
//! - [`GridState`] — the server-side state: a grid monitor plus a
//!   [`QueryCache`] of per-resource forecast answers, invalidated by the
//!   revision counters the grid's memory and forecast service bump on
//!   every measurement append. Repeated queries between 10-second
//!   sensor ticks are O(1) cache hits.
//! - [`NwsServer`] — a threaded `std::net::TcpListener` server speaking
//!   the [`nws_wire`] protocol, with per-connection read/write deadlines
//!   and an in-flight connection bound derived from [`nws_runtime`].
//! - [`ReactorServer`] — the same protocol and semantics on an epoll
//!   reactor: one listener plus a small pool of event loops serving
//!   thousands of concurrent, pipelined connections with zero-copy
//!   replies; deadlines become timer-wheel expirations and the
//!   connection cap becomes an accept gate.
//! - [`NwsClient`] — a typed client with retry-and-reconnect behind
//!   capped exponential backoff and seeded deterministic jitter.
//! - [`Transport`] / [`InMemoryTransport`] — the same codec and
//!   dispatch path without sockets, so tests and the determinism suite
//!   can compare answers bit for bit against the TCP path.
//! - [`ReplicaState`] — a read replica rebuilt byte-for-byte from the
//!   primary's write-ahead log, streamed over the wire protocol's
//!   `WalSince`/`WalChunk` frames and served through the same
//!   [`Dispatch`] machinery as the primary.
//! - [`FailoverClient`] — a typed client over an ordered replica set
//!   with per-endpoint health tracking: transport failures rotate to
//!   the next endpoint, typed server errors do not.
//!
//! [`GridMonitor`]: nws_grid::GridMonitor

mod cache;
mod client;
mod driver;
mod failover;
mod reactor;
mod replica;
mod state;
mod tcp;
mod transport;

pub use cache::QueryCache;
pub use client::{Backoff, ClientConfig, NwsClient};
pub use driver::TickDriver;
pub use failover::FailoverClient;
pub use reactor::{ReactorConfig, ReactorServer};
pub use replica::{ReplicaError, ReplicaState};
pub use state::{Dispatch, GridState};
pub use tcp::{NwsServer, ServerConfig};
pub use transport::{InMemoryTransport, ServeError, Transport};
