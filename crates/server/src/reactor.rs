//! The epoll reactor server: thousands of mostly-idle connections on a
//! small fixed number of threads.
//!
//! The threaded [`NwsServer`](crate::NwsServer) spends one OS thread
//! per live connection, so its connection cap is tied to the thread
//! budget and tops out at dozens of clients. This module serves the
//! same [`Dispatch`] state through a readiness-driven front end
//! instead: one listener thread accepts and admission-gates, a small
//! fixed pool of event-loop threads own the connections (sharded by
//! file descriptor), and every socket is nonblocking behind raw
//! `epoll` — no extra crates, just thin `extern "C"` wrappers over the
//! three syscalls `std` does not expose.
//!
//! Per connection the reactor runs a tiny state machine —
//! reading-header → reading-payload → dispatching → writing — layered
//! over the incremental [`parse_frame_header`] entry point of the wire
//! crate, so validation and error bytes are shared with the threaded
//! path and the two transports stay byte-identical (the tests pin
//! this, pipelined and replica traffic included).
//!
//! What the threaded server does with blocking primitives, the reactor
//! ports to reactor-native mechanisms, preserving semantics:
//!
//! - per-read and whole-frame deadlines become **timer-wheel**
//!   expirations instead of `SO_RCVTIMEO` slices;
//! - the connection cap becomes an **accept gate**: over-cap
//!   connections get the same typed `Overloaded` frame, written
//!   nonblocking from the reactor itself — no detached refusal
//!   threads;
//! - [`ServeCounters`] accounting is identical (accepted/active at
//!   admission, refused at the gate).
//!
//! Pipelining falls out of the design: every complete frame buffered
//! on a connection is dispatched in arrival order and the replies are
//! appended to a per-connection write queue, so many requests can be
//! in flight on one socket and replies never reorder. Replies are
//! encoded zero-copy ([`Dispatch::dispatch_frame`]) straight into that
//! queue, and the flush path uses a vectored write when a freshly
//! encoded reply would otherwise have to be copied behind an
//! undrained queue tail.

use crate::state::{Dispatch, GridState};
use crate::tcp::{overload_response, ServeCounters, ServerConfig};
use nws_wire::{
    append_response_frame, parse_frame_header, ErrorCode, ErrorReply, FrameKind, Request, Response,
    WireError, HEADER_LEN,
};
use std::collections::VecDeque;
use std::io::{IoSlice, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Thin wrappers over the epoll/eventfd syscalls. `std` links libc on
/// every supported platform, so the symbols are already in the
/// process; declaring them here keeps the crate dependency-free.
mod sys {
    use std::fs::File;
    use std::io::{self, Read, Write};
    use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};

    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;

    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;

    const EPOLL_CLOEXEC: i32 = 0o2000000;
    const EFD_CLOEXEC: i32 = 0o2000000;
    const EFD_NONBLOCK: i32 = 0o4000;

    /// The kernel's `struct epoll_event`. Packed on x86-64 (the kernel
    /// ABI has no padding there); naturally aligned everywhere else.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn eventfd(initval: u32, flags: i32) -> i32;
    }

    fn cvt(ret: i32) -> io::Result<i32> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }

    /// An epoll instance. Closing is handled by the wrapped
    /// [`OwnedFd`].
    pub struct Poller {
        ep: OwnedFd,
    }

    impl Poller {
        pub fn new() -> io::Result<Self> {
            // SAFETY: epoll_create1 takes no pointers; a negative
            // return is mapped to errno.
            let fd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
            // SAFETY: fd was just returned by the kernel and is owned
            // by nothing else.
            Ok(Self {
                ep: unsafe { OwnedFd::from_raw_fd(fd) },
            })
        }

        fn ctl(&self, op: i32, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
            let mut ev = EpollEvent {
                events,
                data: token,
            };
            // SAFETY: `ev` is a valid epoll_event for the duration of
            // the call; the kernel copies it before returning.
            cvt(unsafe { epoll_ctl(self.ep.as_raw_fd(), op, fd, &mut ev) })?;
            Ok(())
        }

        pub fn add(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, events, token)
        }

        pub fn modify(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, events, token)
        }

        pub fn delete(&self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
        }

        /// Waits for events, filling `events` from the front. Returns
        /// the number of events. `timeout_ms` of `None` blocks until
        /// an event (or a wake) arrives.
        pub fn wait(
            &self,
            events: &mut [EpollEvent],
            timeout_ms: Option<i32>,
        ) -> io::Result<usize> {
            loop {
                // SAFETY: the pointer/length pair describes `events`,
                // which outlives the call.
                let n = unsafe {
                    epoll_wait(
                        self.ep.as_raw_fd(),
                        events.as_mut_ptr(),
                        events.len() as i32,
                        timeout_ms.unwrap_or(-1),
                    )
                };
                match cvt(n) {
                    Ok(n) => return Ok(n as usize),
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(e),
                }
            }
        }
    }

    /// An eventfd used to kick an event loop out of `epoll_wait` —
    /// for shutdown and for handing freshly accepted connections over.
    /// Wrapped in a [`File`] so reads and writes go through `std`'s
    /// plain fd I/O (`&File` implements `Read`/`Write`).
    pub struct WakeFd {
        file: File,
    }

    impl WakeFd {
        pub fn new() -> io::Result<Self> {
            // SAFETY: eventfd takes no pointers; a negative return is
            // mapped to errno.
            let fd = cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })?;
            // SAFETY: fresh fd, owned by nothing else.
            let owned = unsafe { OwnedFd::from_raw_fd(fd) };
            Ok(Self {
                file: File::from(owned),
            })
        }

        pub fn as_raw_fd(&self) -> RawFd {
            self.file.as_raw_fd()
        }

        /// Bumps the counter; wakes any epoll waiting on this fd. A
        /// full counter (EAGAIN) already means a wake is pending, so
        /// the result is ignored.
        pub fn wake(&self) {
            let _ = (&self.file).write(&1u64.to_ne_bytes());
        }

        /// Clears the counter so the next `wake` edge is observable.
        pub fn drain(&self) {
            let mut buf = [0u8; 8];
            let _ = (&self.file).read(&mut buf);
        }
    }
}

use sys::{EpollEvent, Poller, WakeFd, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP};

/// Token reserved for the per-loop wake eventfd.
const WAKE_TOKEN: u64 = u64::MAX;

/// How many bytes one nonblocking read asks for.
const READ_CHUNK: usize = 16 * 1024;

/// Consumed-prefix length past which the input buffer is compacted.
const COMPACT_THRESHOLD: usize = 8 * 1024;

/// The write budget for one refusal frame, matching the threaded
/// server's 250 ms refusal write timeout.
const REFUSAL_DEADLINE: Duration = Duration::from_millis(250);

/// Tunables for [`ReactorServer`]: the threaded server's knobs plus
/// the reactor's own shape.
#[derive(Debug, Clone, Copy)]
pub struct ReactorConfig {
    /// Deadlines and the connection cap, with the same meanings as on
    /// the threaded server (`read_timeout` is the idle cut,
    /// `request_deadline` the whole-frame budget, `write_timeout` the
    /// stalled-writer cut). `max_connections` defaults to the threaded
    /// value; raise it into the thousands for reactor-scale serving.
    pub server: ServerConfig,
    /// Event-loop threads. Connections are sharded across them by
    /// file descriptor. Defaults to the runtime thread count, clamped
    /// to at most 4 — event loops are I/O-bound and a handful covers
    /// tens of thousands of connections.
    pub event_loops: usize,
    /// Timer-wheel granularity: deadlines fire within one tick of
    /// their due time.
    pub timer_tick: Duration,
}

impl Default for ReactorConfig {
    fn default() -> Self {
        Self {
            server: ServerConfig::default(),
            event_loops: nws_runtime::threads().clamp(1, 4),
            timer_tick: Duration::from_millis(10),
        }
    }
}

/// A hashed timer wheel: coarse-grained deadline scheduling in O(1)
/// arm and O(slots touched) advance. Entries are only *hints* to
/// re-check a connection around its deadline; the precise deadlines
/// live on the connection, so a deadline that moved later is simply
/// re-armed when its stale entry fires (lazy cancellation), and a
/// closed slot is recognized by its generation counter.
struct TimerWheel {
    slots: Vec<Vec<WheelEntry>>,
    tick: Duration,
    epoch: Instant,
    /// Ticks fully processed.
    cursor: u64,
}

#[derive(Clone, Copy)]
struct WheelEntry {
    tick: u64,
    slot: usize,
    gen: u64,
}

impl TimerWheel {
    fn new(tick: Duration, slots: usize, epoch: Instant) -> Self {
        Self {
            slots: (0..slots).map(|_| Vec::new()).collect(),
            tick: tick.max(Duration::from_millis(1)),
            epoch,
            cursor: 0,
        }
    }

    /// The tick at (or just after) `when`, never in the past.
    fn tick_for(&self, when: Instant) -> u64 {
        let dt = when.saturating_duration_since(self.epoch);
        let t = (dt.as_nanos() / self.tick.as_nanos()) as u64 + 1;
        t.max(self.cursor + 1)
    }

    /// Schedules a check of `(slot, gen)` at `when`; returns the tick
    /// the entry landed on.
    fn arm(&mut self, when: Instant, slot: usize, gen: u64) -> u64 {
        let tick = self.tick_for(when);
        let idx = (tick % self.slots.len() as u64) as usize;
        self.slots[idx].push(WheelEntry { tick, slot, gen });
        tick
    }

    /// Advances the wheel to `now`, moving every due entry into `due`
    /// as `(slot, gen, tick)`. Entries from future wheel rounds that
    /// share a bucket stay in place.
    fn advance_into(&mut self, now: Instant, due: &mut Vec<(usize, u64, u64)>) {
        let elapsed = now.saturating_duration_since(self.epoch);
        let target = (elapsed.as_nanos() / self.tick.as_nanos()) as u64;
        while self.cursor < target {
            self.cursor += 1;
            let idx = (self.cursor % self.slots.len() as u64) as usize;
            let bucket = &mut self.slots[idx];
            let mut i = 0;
            while i < bucket.len() {
                if bucket[i].tick <= self.cursor {
                    let e = bucket.swap_remove(i);
                    due.push((e.slot, e.gen, e.tick));
                } else {
                    i += 1;
                }
            }
        }
    }
}

/// How a freshly accepted connection enters an event loop.
enum Admission {
    /// Under the cap: serve requests.
    Serve,
    /// Over the cap: write the typed `Overloaded` frame, then close.
    Refuse,
}

/// What a connection is doing.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// The request/reply cycle.
    Serving,
    /// Flushing a refusal or a malformed-request error frame; close as
    /// soon as the queue drains. No further reads are processed.
    Draining,
}

/// One connection's state: buffers, phase, and deadlines.
struct Conn {
    stream: TcpStream,
    phase: Phase,
    /// Distinguishes this occupant of the slab slot from earlier ones,
    /// so stale timer entries can't touch a reused slot.
    gen: u64,
    /// Events currently registered with epoll.
    interest: u32,
    /// Buffered request bytes; `in_pos` marks the consumed prefix.
    inbuf: Vec<u8>,
    in_pos: usize,
    /// The write queue: reply frames not yet accepted by the socket.
    pending: Vec<u8>,
    pending_pos: usize,
    /// Replies encoded since the last flush — written straight from
    /// here (vectored with the queue tail) in the common case, folded
    /// into `pending` only when the socket pushes back.
    fresh: Vec<u8>,
    /// Peer half-closed its write side; close once replies drain.
    eof: bool,
    /// Idle cut: reset on every successful read.
    idle_at: Instant,
    /// Whole-frame budget: reset at each request boundary.
    frame_at: Instant,
    /// Armed while the write queue is nonempty.
    write_at: Option<Instant>,
    /// Wheel tick of the soonest scheduled check, for dedupe.
    armed_tick: u64,
    /// This connection holds a slot in `ServeCounters::active`.
    counted: bool,
}

impl Conn {
    fn earliest_deadline(&self) -> Instant {
        let mut earliest = self.idle_at.min(self.frame_at);
        if let Some(w) = self.write_at {
            earliest = earliest.min(w);
        }
        earliest
    }

    fn has_backlog(&self) -> bool {
        self.pending.len() > self.pending_pos || !self.fresh.is_empty()
    }

    /// Pushes queued reply bytes into the socket; `Ok(true)` when
    /// everything has been written. Uses one plain write when only one
    /// span exists and one vectored write when a fresh reply sits
    /// behind an undrained queue tail — the fresh bytes are only
    /// memcpy'd into the queue if the socket refuses them.
    fn flush(&mut self) -> std::io::Result<bool> {
        loop {
            let a_len = self.pending.len() - self.pending_pos;
            let b_len = self.fresh.len();
            if a_len == 0 && b_len == 0 {
                self.pending.clear();
                self.pending_pos = 0;
                return Ok(true);
            }
            let res = if a_len == 0 {
                self.stream.write(&self.fresh)
            } else if b_len == 0 {
                self.stream.write(&self.pending[self.pending_pos..])
            } else {
                self.stream.write_vectored(&[
                    IoSlice::new(&self.pending[self.pending_pos..]),
                    IoSlice::new(&self.fresh),
                ])
            };
            match res {
                Ok(0) => return Err(std::io::ErrorKind::WriteZero.into()),
                Ok(n) => {
                    let from_a = n.min(a_len);
                    self.pending_pos += from_a;
                    let from_b = n - from_a;
                    if self.pending_pos == self.pending.len() && b_len > 0 {
                        // Queue drained mid-write: the unwritten tail
                        // of `fresh` becomes the queue without a copy.
                        std::mem::swap(&mut self.pending, &mut self.fresh);
                        self.fresh.clear();
                        self.pending_pos = from_b;
                    } else {
                        debug_assert_eq!(from_b, 0);
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if !self.fresh.is_empty() {
                        if self.pending_pos == self.pending.len() {
                            std::mem::swap(&mut self.pending, &mut self.fresh);
                            self.pending_pos = 0;
                        } else {
                            self.pending.extend_from_slice(&self.fresh);
                        }
                        self.fresh.clear();
                    }
                    return Ok(false);
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }
}

/// The channel a listener hands accepted sockets over on, one per
/// event loop.
struct LoopShared {
    wake: WakeFd,
    inbox: Mutex<VecDeque<(TcpStream, Admission)>>,
}

/// Why a connection is being torn down.
enum Close {
    /// Hang up with nothing more to say (peer gone, deadline hit,
    /// shutdown).
    Silent,
    /// An error frame is queued; drain it, then hang up.
    AfterDrain,
}

struct EventLoop<D: Dispatch> {
    poller: Poller,
    shared: Arc<LoopShared>,
    state: Arc<Mutex<D>>,
    counters: Arc<ServeCounters>,
    shutdown: Arc<AtomicBool>,
    config: ReactorConfig,
    wheel: TimerWheel,
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    /// Slots closed during the current event batch; merged into `free`
    /// only after the batch, so a stale event in the same batch cannot
    /// reach a recycled slot.
    freed: Vec<usize>,
    next_gen: u64,
}

impl<D: Dispatch> EventLoop<D> {
    fn run(mut self) {
        let mut events = vec![EpollEvent { events: 0, data: 0 }; 256];
        let mut due: Vec<(usize, u64, u64)> = Vec::new();
        let tick_ms = self.config.timer_tick.as_millis().clamp(1, 1000) as i32;
        while let Ok(n) = self.poller.wait(&mut events, Some(tick_ms)) {
            if self.shutdown.load(Ordering::SeqCst) {
                break;
            }
            for ev in &events[..n] {
                let token = ev.data;
                let bits = ev.events;
                if token == WAKE_TOKEN {
                    self.shared.wake.drain();
                    continue;
                }
                self.handle_event(token as usize, bits);
            }
            self.register_arrivals();
            let now = Instant::now();
            self.wheel.advance_into(now, &mut due);
            for (slot, gen, tick) in due.drain(..) {
                self.handle_timer(slot, gen, tick, now);
            }
            self.free.append(&mut self.freed);
        }
        // Shutdown: drop every connection — to clients this looks like
        // the crash the threaded server's shutdown also resembles.
    }

    /// Moves freshly accepted connections from the inbox into the
    /// slab and registers them with epoll.
    fn register_arrivals(&mut self) {
        loop {
            let next = self
                .shared
                .inbox
                .lock()
                .expect("inbox poisoned")
                .pop_front();
            let Some((stream, admission)) = next else {
                return;
            };
            let now = Instant::now();
            let gen = self.next_gen;
            self.next_gen += 1;
            let (phase, counted) = match admission {
                Admission::Serve => (Phase::Serving, true),
                Admission::Refuse => (Phase::Draining, false),
            };
            let mut conn = Conn {
                stream,
                phase,
                gen,
                interest: 0,
                inbuf: Vec::new(),
                in_pos: 0,
                pending: Vec::new(),
                pending_pos: 0,
                fresh: Vec::new(),
                eof: false,
                idle_at: now + self.config.server.read_timeout,
                frame_at: now + self.config.server.request_deadline,
                write_at: None,
                armed_tick: 0,
                counted,
            };
            if let Admission::Refuse = admission {
                // The refusal is best-effort with a tight budget, like
                // the threaded server's detached refusal thread — but
                // served from the reactor itself.
                append_response_frame(&mut conn.fresh, &overload_response());
                conn.idle_at = now + REFUSAL_DEADLINE;
                conn.frame_at = conn.idle_at;
                if matches!(conn.flush(), Ok(true) | Err(_)) {
                    // Written whole (or the peer is already gone):
                    // close without ever registering.
                    if conn.counted {
                        self.counters.active.fetch_sub(1, Ordering::SeqCst);
                    }
                    continue;
                }
            }
            let slot = match self.free.pop() {
                Some(s) => s,
                None => {
                    self.conns.push(None);
                    self.conns.len() - 1
                }
            };
            let interest = match conn.phase {
                Phase::Serving => EPOLLIN | EPOLLRDHUP,
                Phase::Draining => EPOLLOUT,
            };
            conn.interest = interest;
            let fd = conn.stream.as_raw_fd();
            if self.poller.add(fd, interest, slot as u64).is_err() {
                if conn.counted {
                    self.counters.active.fetch_sub(1, Ordering::SeqCst);
                }
                self.free.push(slot);
                continue;
            }
            self.conns[slot] = Some(conn);
            self.schedule(slot);
        }
    }

    /// Re-arms the wheel for a connection's earliest deadline, unless
    /// an earlier-or-equal check is already scheduled.
    fn schedule(&mut self, slot: usize) {
        let Some(conn) = self.conns[slot].as_mut() else {
            return;
        };
        let when = conn.earliest_deadline();
        let tick = self.wheel.tick_for(when);
        if conn.armed_tick > self.wheel.cursor && conn.armed_tick <= tick {
            return;
        }
        conn.armed_tick = self.wheel.arm(when, slot, conn.gen);
    }

    fn handle_timer(&mut self, slot: usize, gen: u64, tick: u64, now: Instant) {
        let Some(conn) = self.conns.get(slot).and_then(|c| c.as_ref()) else {
            return;
        };
        if conn.gen != gen || conn.armed_tick != tick {
            return; // superseded or recycled
        }
        if conn.earliest_deadline() <= now {
            // Deadlines close silently, exactly like the threaded
            // server's timeouts: the peer reads an EOF, not an excuse.
            self.close(slot);
        } else {
            self.schedule(slot);
        }
    }

    fn handle_event(&mut self, slot: usize, bits: u32) {
        let Some(conn) = self.conns.get(slot).and_then(|c| c.as_ref()) else {
            return; // closed earlier in this batch, or never a slot
        };
        if bits & (EPOLLERR | EPOLLHUP) != 0 {
            // On a draining connection give the queue one last push —
            // EPOLLHUP with a refusal queued usually means the peer
            // closed its read side after we saw it.
            if conn.phase == Phase::Draining {
                if let Some(c) = self.conns[slot].as_mut() {
                    let _ = c.flush();
                }
            }
            self.close(slot);
            return;
        }
        match conn.phase {
            Phase::Draining => {
                if bits & (EPOLLOUT | EPOLLIN | EPOLLRDHUP) != 0 {
                    self.drain_step(slot);
                }
            }
            Phase::Serving => {
                let mut closing: Option<Close> = None;
                if bits & (EPOLLIN | EPOLLRDHUP) != 0 {
                    closing = self.readable(slot);
                }
                if closing.is_none() && self.conns[slot].is_some() {
                    closing = self.flush_and_update(slot);
                }
                match closing {
                    Some(Close::Silent) => self.close(slot),
                    Some(Close::AfterDrain) => {
                        if let Some(c) = self.conns[slot].as_mut() {
                            c.phase = Phase::Draining;
                            if !c.has_backlog() {
                                self.close(slot);
                            } else {
                                self.update_interest(slot);
                            }
                        }
                    }
                    None => {}
                }
            }
        }
    }

    /// One readable step: pull bytes, then dispatch every complete
    /// frame in arrival order (pipelining), appending replies to the
    /// write queue in the same order.
    fn readable(&mut self, slot: usize) -> Option<Close> {
        let now = Instant::now();
        // Read until the socket runs dry.
        {
            let conn = self.conns[slot].as_mut()?;
            loop {
                let old = conn.inbuf.len();
                conn.inbuf.resize(old + READ_CHUNK, 0);
                match conn.stream.read(&mut conn.inbuf[old..]) {
                    Ok(0) => {
                        conn.inbuf.truncate(old);
                        conn.eof = true;
                        break;
                    }
                    Ok(n) => {
                        conn.inbuf.truncate(old + n);
                        conn.idle_at = now + self.config.server.read_timeout;
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        conn.inbuf.truncate(old);
                        break;
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {
                        conn.inbuf.truncate(old);
                    }
                    Err(_) => {
                        conn.inbuf.truncate(old);
                        return Some(Close::Silent);
                    }
                }
            }
        }
        // Dispatch complete frames.
        let malformed = self.process_frames(slot);
        let conn = self.conns[slot].as_mut()?;
        if let Some(e) = malformed {
            // Same typed refusal, byte for byte, as the threaded
            // server's malformed-frame path — then close.
            let resp = Response::Error(ErrorReply {
                code: ErrorCode::BadRequest,
                message: format!("malformed request: {e}"),
            });
            append_response_frame(&mut conn.fresh, &resp);
            return Some(Close::AfterDrain);
        }
        if conn.eof {
            // Peer half-closed: answer what was pipelined, then leave.
            return Some(Close::AfterDrain);
        }
        // Compact the consumed prefix once it is worth the memmove.
        if conn.in_pos == conn.inbuf.len() {
            conn.inbuf.clear();
            conn.in_pos = 0;
        } else if conn.in_pos > COMPACT_THRESHOLD {
            conn.inbuf.drain(..conn.in_pos);
            conn.in_pos = 0;
        }
        None
    }

    /// Dispatches every complete frame buffered on `slot`. Returns the
    /// wire error of the first malformed frame, if any.
    fn process_frames(&mut self, slot: usize) -> Option<WireError> {
        loop {
            let (req, frame_len) = {
                let conn = self.conns[slot].as_mut()?;
                let avail = &conn.inbuf[conn.in_pos..];
                if avail.len() < HEADER_LEN {
                    return None;
                }
                let header: [u8; HEADER_LEN] =
                    avail[..HEADER_LEN].try_into().expect("checked length");
                let (kind, len) = match parse_frame_header(&header) {
                    Ok(parsed) => parsed,
                    Err(e) => return Some(e),
                };
                if avail.len() < HEADER_LEN + len {
                    // Reading-payload state: wait for the rest. The
                    // whole-frame budget armed at the last request
                    // boundary keeps counting.
                    return None;
                }
                if kind != FrameKind::Request {
                    // Same refusal (and the same "wait for the full
                    // payload first" behavior) as `read_request`.
                    return Some(WireError::BadKind(1));
                }
                let payload = &avail[HEADER_LEN..HEADER_LEN + len];
                match Request::decode(payload) {
                    Ok(req) => (req, HEADER_LEN + len),
                    Err(e) => return Some(e),
                }
            };
            if self.shutdown.load(Ordering::SeqCst) {
                // Mirror the threaded server: hang up without
                // answering once shutdown begins.
                let conn = self.conns[slot].as_mut()?;
                conn.eof = true;
                conn.fresh.clear();
                conn.pending.clear();
                conn.pending_pos = 0;
                return None;
            }
            {
                let conn = self.conns[slot].as_mut()?;
                let mut state = self.state.lock().expect("server state poisoned");
                state.dispatch_frame(&req, &mut conn.fresh);
                drop(state);
                conn.in_pos += frame_len;
                // Request boundary: a fresh whole-frame budget.
                conn.frame_at = Instant::now() + self.config.server.request_deadline;
            }
        }
    }

    /// Flushes after serving; manages EPOLLOUT interest and the write
    /// deadline.
    fn flush_and_update(&mut self, slot: usize) -> Option<Close> {
        let conn = self.conns[slot].as_mut()?;
        match conn.flush() {
            Ok(true) => {
                conn.write_at = None;
                if conn.eof {
                    return Some(Close::Silent);
                }
            }
            Ok(false) => {
                if conn.write_at.is_none() {
                    conn.write_at = Some(Instant::now() + self.config.server.write_timeout);
                }
            }
            Err(_) => return Some(Close::Silent),
        }
        self.update_interest(slot);
        self.schedule(slot);
        None
    }

    /// Syncs epoll interest with the connection's phase and backlog.
    fn update_interest(&mut self, slot: usize) {
        let Some(conn) = self.conns[slot].as_mut() else {
            return;
        };
        let desired = match conn.phase {
            Phase::Serving => {
                let mut d = EPOLLIN | EPOLLRDHUP;
                if conn.has_backlog() {
                    d |= EPOLLOUT;
                }
                d
            }
            Phase::Draining => EPOLLOUT,
        };
        if desired != conn.interest {
            let fd = conn.stream.as_raw_fd();
            if self.poller.modify(fd, desired, slot as u64).is_ok() {
                conn.interest = desired;
            }
        }
    }

    /// One step of draining a refusal/error frame.
    fn drain_step(&mut self, slot: usize) {
        let Some(conn) = self.conns[slot].as_mut() else {
            return;
        };
        match conn.flush() {
            Ok(true) | Err(_) => self.close(slot),
            Ok(false) => {
                self.update_interest(slot);
                self.schedule(slot);
            }
        }
    }

    fn close(&mut self, slot: usize) {
        if let Some(conn) = self.conns[slot].take() {
            let _ = self.poller.delete(conn.stream.as_raw_fd());
            if conn.counted {
                self.counters.active.fetch_sub(1, Ordering::SeqCst);
            }
            // The TcpStream drops (and closes) here.
            self.freed.push(slot);
        }
    }
}

fn run_listener(
    listener: TcpListener,
    poller: Poller,
    wake: Arc<WakeFd>,
    loops: Vec<Arc<LoopShared>>,
    counters: Arc<ServeCounters>,
    shutdown: Arc<AtomicBool>,
    config: ReactorConfig,
) {
    const LISTENER_TOKEN: u64 = 0;
    if poller
        .add(listener.as_raw_fd(), EPOLLIN, LISTENER_TOKEN)
        .is_err()
        || poller.add(wake.as_raw_fd(), EPOLLIN, WAKE_TOKEN).is_err()
    {
        return;
    }
    let mut events = vec![EpollEvent { events: 0, data: 0 }; 64];
    loop {
        let n = match poller.wait(&mut events, None) {
            Ok(n) => n,
            Err(_) => return,
        };
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        let mut accept_ready = false;
        for ev in &events[..n] {
            match ev.data {
                WAKE_TOKEN => wake.drain(),
                _ => accept_ready = true,
            }
        }
        if !accept_ready {
            continue;
        }
        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    let _ = stream.set_nodelay(true);
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    // The accept gate: admission control happens here,
                    // in the reactor, and the refusal frame is written
                    // by an event loop — never a detached thread.
                    let over =
                        counters.active.load(Ordering::SeqCst) >= config.server.max_connections;
                    let admission = if over {
                        counters.refused.fetch_add(1, Ordering::SeqCst);
                        Admission::Refuse
                    } else {
                        counters.accepted.fetch_add(1, Ordering::SeqCst);
                        counters.active.fetch_add(1, Ordering::SeqCst);
                        Admission::Serve
                    };
                    // Shard by fd: cheap, stable, and uniform enough —
                    // fds are densely recycled integers.
                    let li = (stream.as_raw_fd() as usize) % loops.len();
                    loops[li]
                        .inbox
                        .lock()
                        .expect("inbox poisoned")
                        .push_back((stream, admission));
                    loops[li].wake.wake();
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => return,
            }
        }
    }
}

/// A running epoll-reactor forecast server bound to a local port, with
/// the same surface as the threaded [`NwsServer`](crate::NwsServer):
/// spawn it over any [`Dispatch`] state, read its counters, shut it
/// down. The difference is capacity: thousands of concurrent
/// connections on `1 + event_loops` threads, where the threaded server
/// needs a thread per connection.
pub struct ReactorServer<D: Dispatch + 'static = GridState> {
    addr: SocketAddr,
    state: Arc<Mutex<D>>,
    shutdown: Arc<AtomicBool>,
    counters: Arc<ServeCounters>,
    listener_wake: Arc<WakeFd>,
    loops: Vec<Arc<LoopShared>>,
    threads: Vec<JoinHandle<()>>,
}

impl<D: Dispatch + 'static> ReactorServer<D> {
    /// Spawns the reactor on an OS-assigned localhost port.
    pub fn spawn(state: D, config: ReactorConfig) -> std::io::Result<Self> {
        Self::spawn_shared(Arc::new(Mutex::new(state)), config)
    }

    /// Spawns the reactor over state shared with the caller.
    pub fn spawn_shared(state: Arc<Mutex<D>>, config: ReactorConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let counters = Arc::new(ServeCounters::default());
        let n_loops = config.event_loops.max(1);
        let listener_poller = Poller::new()?;
        let listener_wake = Arc::new(WakeFd::new()?);
        let mut loops = Vec::with_capacity(n_loops);
        let mut loop_pollers = Vec::with_capacity(n_loops);
        for _ in 0..n_loops {
            let shared = Arc::new(LoopShared {
                wake: WakeFd::new()?,
                inbox: Mutex::new(VecDeque::new()),
            });
            let poller = Poller::new()?;
            poller.add(shared.wake.as_raw_fd(), EPOLLIN, WAKE_TOKEN)?;
            loops.push(shared);
            loop_pollers.push(poller);
        }
        let mut threads = Vec::with_capacity(n_loops + 1);
        let epoch = Instant::now();
        for (shared, poller) in loops.iter().cloned().zip(loop_pollers) {
            let ev = EventLoop {
                poller,
                shared,
                state: Arc::clone(&state),
                counters: Arc::clone(&counters),
                shutdown: Arc::clone(&shutdown),
                config,
                wheel: TimerWheel::new(config.timer_tick, 512, epoch),
                conns: Vec::new(),
                free: Vec::new(),
                freed: Vec::new(),
                next_gen: 1,
            };
            threads.push(std::thread::spawn(move || ev.run()));
        }
        {
            let loops = loops.clone();
            let counters = Arc::clone(&counters);
            let shutdown = Arc::clone(&shutdown);
            let wake = Arc::clone(&listener_wake);
            threads.push(std::thread::spawn(move || {
                run_listener(
                    listener,
                    listener_poller,
                    wake,
                    loops,
                    counters,
                    shutdown,
                    config,
                )
            }));
        }
        Ok(Self {
            addr,
            state,
            shutdown,
            counters,
            listener_wake,
            loops,
            threads,
        })
    }

    /// The address clients should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared state, for ticking the grid or reading cache stats
    /// while the server runs.
    pub fn state(&self) -> &Arc<Mutex<D>> {
        &self.state
    }

    /// Connections admitted to service so far.
    pub fn accepted(&self) -> u64 {
        self.counters.accepted.load(Ordering::SeqCst)
    }

    /// Connections turned away at the cap with a typed `Overloaded`.
    pub fn refused(&self) -> u64 {
        self.counters.refused.load(Ordering::SeqCst)
    }

    /// Connections being served right now.
    pub fn active_connections(&self) -> usize {
        self.counters.active.load(Ordering::SeqCst)
    }

    /// Stops the listener and the event loops and joins them. Open
    /// connections are dropped, so a shutdown looks like a crash to
    /// connected clients — the same contract as the threaded server.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.listener_wake.wake();
        for l in &self.loops {
            l.wake.wake();
        }
        for h in self.threads.drain(..) {
            let _ = h.join();
        }
    }
}

impl<D: Dispatch + 'static> Drop for ReactorServer<D> {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::Transport;
    use crate::{ClientConfig, NwsClient};
    use nws_grid::{GridMonitor, GridMonitorConfig};
    use nws_sim::HostProfile;
    use nws_wire::ErrorCode;

    fn warm_reactor(config: ReactorConfig) -> ReactorServer {
        let mut grid = GridMonitor::new(
            &[HostProfile::Thing1, HostProfile::Gremlin],
            21,
            GridMonitorConfig::default(),
        );
        grid.run_steps(50);
        ReactorServer::spawn(GridState::new(grid), config).expect("bind localhost")
    }

    #[test]
    fn wheel_fires_once_per_arm_and_keeps_future_rounds() {
        let epoch = Instant::now();
        let mut wheel = TimerWheel::new(Duration::from_millis(10), 8, epoch);
        // Two entries 8 slots apart share a bucket; advancing past the
        // first must not spill the second.
        let near = wheel.arm(epoch + Duration::from_millis(20), 1, 7);
        let far = wheel.arm(epoch + Duration::from_millis(100), 2, 9);
        assert_eq!(far - near, 8, "chosen to collide in one bucket");
        let mut due = Vec::new();
        wheel.advance_into(epoch + Duration::from_millis(40), &mut due);
        assert_eq!(due, vec![(1, 7, near)]);
        due.clear();
        wheel.advance_into(epoch + Duration::from_millis(120), &mut due);
        assert_eq!(due, vec![(2, 9, far)]);
        due.clear();
        wheel.advance_into(epoch + Duration::from_millis(200), &mut due);
        assert!(due.is_empty(), "entries fire exactly once");
    }

    #[test]
    fn wheel_never_arms_in_the_past() {
        let epoch = Instant::now();
        let mut wheel = TimerWheel::new(Duration::from_millis(10), 8, epoch);
        let mut due = Vec::new();
        wheel.advance_into(epoch + Duration::from_millis(55), &mut due);
        // A deadline already in the past lands on the next tick, not a
        // tick the cursor has already passed (which would never fire).
        let t = wheel.arm(epoch, 3, 1);
        assert!(t > wheel.cursor);
        wheel.advance_into(epoch + Duration::from_millis(75), &mut due);
        assert_eq!(due, vec![(3, 1, t)]);
    }

    #[test]
    fn serves_typed_queries_like_the_threaded_server() {
        let server = warm_reactor(ReactorConfig::default());
        let mut client =
            NwsClient::connect(server.addr(), ClientConfig::default()).expect("connect");
        let fc = client.forecast("thing1").expect("forecast");
        assert!((0.0..=1.0).contains(&fc.value));
        let snap = client.snapshot().expect("snapshot");
        assert_eq!(snap.hosts.len(), 2);
        let stats = client.stats().expect("stats");
        assert!(stats.requests >= 2);
        assert_eq!(server.accepted(), 1);
        assert_eq!(server.refused(), 0);
    }

    #[test]
    fn accept_gate_refuses_with_a_typed_overloaded_frame() {
        let server = warm_reactor(ReactorConfig {
            server: ServerConfig {
                max_connections: 0, // everything is over capacity
                ..ServerConfig::default()
            },
            ..ReactorConfig::default()
        });
        let mut client =
            NwsClient::connect(server.addr(), ClientConfig::default()).expect("connect");
        match client.forecast("thing1") {
            Err(crate::ServeError::Remote(e)) => assert_eq!(e.code, ErrorCode::Overloaded),
            other => panic!("expected typed refusal, got {other:?}"),
        }
        assert_eq!(server.refused(), 1);
        assert_eq!(server.active_connections(), 0);
    }

    #[test]
    fn shutdown_joins_all_threads() {
        let mut server = warm_reactor(ReactorConfig::default());
        let mut client =
            NwsClient::connect(server.addr(), ClientConfig::default()).expect("connect");
        client.forecast("gremlin").expect("forecast");
        server.shutdown();
        // Idempotent: a second shutdown (and the later Drop) is a no-op.
        server.shutdown();
    }
}
