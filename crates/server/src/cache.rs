//! The query cache: revision-validated answers for the hot read path.
//!
//! Between two sensor ticks nothing about a forecast can change, so the
//! server remembers the encoded answer it gave and the revision counter
//! it was computed at. A later query compares one integer: equal means
//! serve the cached reply (a hit), moved means recompute (a miss after
//! an invalidation). The grid bumps the counters on every measurement
//! append and recorded gap — see `Memory::revision` and
//! `ForecastService::revision` in `nws-grid`.

use nws_grid::ResourceId;
use nws_wire::{ForecastReply, SnapshotReply};
use std::collections::BTreeMap;

/// One cached per-resource forecast answer.
#[derive(Debug, Clone)]
struct CachedForecast {
    /// `ForecastService` revision the answer was computed at.
    revision: u64,
    reply: ForecastReply,
}

/// Revision-validated cache of forecast and snapshot answers, plus the
/// hit/miss accounting the `Stats` request reports.
#[derive(Debug, Default)]
pub struct QueryCache {
    forecasts: BTreeMap<ResourceId, CachedForecast>,
    /// Whole-grid snapshot, keyed by the monitor-wide revision.
    snapshot: Option<(u64, SnapshotReply)>,
    hits: u64,
    misses: u64,
    invalidations: u64,
}

impl QueryCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Looks up the cached forecast for a resource if it is still
    /// current at `revision`; stale entries are discarded (and counted
    /// as invalidations).
    pub fn forecast(&mut self, id: ResourceId, revision: u64) -> Option<ForecastReply> {
        self.forecast_ref(id, revision).cloned()
    }

    /// Borrowing form of [`QueryCache::forecast`]: validates and counts
    /// exactly the same way but hands back a reference, so the
    /// zero-copy reply path encodes a cached answer without cloning
    /// its strings.
    pub fn forecast_ref(&mut self, id: ResourceId, revision: u64) -> Option<&ForecastReply> {
        match self.forecasts.get(&id) {
            Some(c) if c.revision == revision => self.hits += 1,
            Some(_) => {
                self.forecasts.remove(&id);
                self.invalidations += 1;
                self.misses += 1;
                return None;
            }
            None => {
                self.misses += 1;
                return None;
            }
        }
        self.forecasts.get(&id).map(|c| &c.reply)
    }

    /// Stores a freshly computed forecast answer.
    pub fn store_forecast(&mut self, id: ResourceId, revision: u64, reply: ForecastReply) {
        self.forecasts
            .insert(id, CachedForecast { revision, reply });
    }

    /// Looks up the cached snapshot if it is still current.
    pub fn snapshot(&mut self, revision: u64) -> Option<SnapshotReply> {
        self.snapshot_ref(revision).cloned()
    }

    /// Borrowing form of [`QueryCache::snapshot`]: validates and counts
    /// exactly the same way but hands back a reference, so read paths
    /// that only inspect the rows (best-host selection) never clone the
    /// whole reply.
    pub fn snapshot_ref(&mut self, revision: u64) -> Option<&SnapshotReply> {
        match &self.snapshot {
            Some((rev, _)) if *rev == revision => self.hits += 1,
            Some(_) => {
                self.snapshot = None;
                self.invalidations += 1;
                self.misses += 1;
                return None;
            }
            None => {
                self.misses += 1;
                return None;
            }
        }
        self.snapshot.as_ref().map(|(_, reply)| reply)
    }

    /// The stored snapshot, if any, without revision validation or
    /// hit/miss accounting. For servers that have just probed (or just
    /// stored) and need the reference back.
    pub fn stored_snapshot(&self) -> Option<&SnapshotReply> {
        self.snapshot.as_ref().map(|(_, reply)| reply)
    }

    /// Stores a freshly computed snapshot.
    pub fn store_snapshot(&mut self, revision: u64, reply: SnapshotReply) {
        self.snapshot = Some((revision, reply));
    }

    /// Answers served from cache.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Answers that had to be computed.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Cached answers discarded because their revision moved.
    pub fn invalidations(&self) -> u64 {
        self.invalidations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reply(host: &str, value: f64) -> ForecastReply {
        ForecastReply {
            host: host.into(),
            value,
            method: "mean".into(),
            interval: None,
            observations: 1,
            staleness: 0.0,
            confidence: 1.0,
        }
    }

    #[test]
    fn hit_while_revision_holds_then_invalidate() {
        let mut c = QueryCache::new();
        let id = ResourceId(3);
        assert!(c.forecast(id, 5).is_none(), "cold cache misses");
        c.store_forecast(id, 5, reply("kongo", 0.5));
        assert_eq!(c.forecast(id, 5).expect("hit").value, 0.5);
        assert_eq!(c.forecast(id, 5).expect("hit").value, 0.5);
        assert_eq!((c.hits(), c.misses(), c.invalidations()), (2, 1, 0));
        // Revision moved: the entry is discarded, not served.
        assert!(c.forecast(id, 6).is_none());
        assert_eq!((c.hits(), c.misses(), c.invalidations()), (2, 2, 1));
        // And it stays gone (no double-invalidation accounting).
        assert!(c.forecast(id, 6).is_none());
        assert_eq!(c.invalidations(), 1);
    }

    #[test]
    fn snapshot_cache_follows_the_same_protocol() {
        let mut c = QueryCache::new();
        let snap = SnapshotReply {
            time: 120.0,
            hosts: Vec::new(),
        };
        assert!(c.snapshot(1).is_none());
        c.store_snapshot(1, snap.clone());
        assert_eq!(c.snapshot(1).expect("hit"), snap);
        assert!(c.snapshot(2).is_none(), "stale snapshot invalidated");
        assert_eq!(c.invalidations(), 1);
    }

    #[test]
    fn resources_are_cached_independently() {
        let mut c = QueryCache::new();
        c.store_forecast(ResourceId(1), 10, reply("a", 0.1));
        c.store_forecast(ResourceId(2), 20, reply("b", 0.2));
        assert_eq!(c.forecast(ResourceId(1), 10).expect("hit").value, 0.1);
        assert!(c.forecast(ResourceId(2), 21).is_none(), "b moved on");
        assert_eq!(
            c.forecast(ResourceId(1), 10).expect("still valid").value,
            0.1
        );
    }
}
