//! Read replicas: a serving-side copy of the primary's state rebuilt
//! from its journal, byte for byte.
//!
//! A replica never runs host simulators or sensors. It pulls the
//! primary's write-ahead log over the wire ([`Request::WalSince`] →
//! [`Response::WalChunk`]) and applies each record in commit order —
//! the exact order the primary mutated its own [`Memory`] and
//! [`ForecastService`] — so after draining the log the replica's
//! column bytes, revision counters, and fingerprint are identical to
//! the primary's. That makes "a replica serves the same answers as the
//! primary" a byte-level property, checked here by fingerprint and in
//! `tests/durability.rs` at every revision of a seeded run.
//!
//! Staleness stays explicit end to end: the primary stamps every chunk
//! with its simulation clock, the replica judges forecast staleness
//! against that stamp, and the revision-validated [`QueryCache`] keeps
//! cached answers pinned to the replicated revision they were computed
//! at.

use crate::cache::QueryCache;
use crate::state::Dispatch;
use crate::transport::{ServeError, Transport};
use nws_grid::wal::replay;
use nws_grid::{
    ForecastService, GridMonitorConfig, Memory, Metric, Registry, ResourceId, WalError, WalRecord,
};
use nws_wire::{
    ErrorCode, ErrorReply, ForecastReply, HorizonReply, HostRow, Request, Response, SeriesPoint,
    SeriesTailReply, SnapshotReply, StatsReply, WalChunkReply, MAX_BATCH, MAX_HORIZON, MAX_POINTS,
    MAX_WAL_CHUNK,
};

/// Everything that can go wrong applying the replication stream.
#[derive(Debug)]
pub enum ReplicaError {
    /// A chunk did not start where the replica left off.
    OffsetGap {
        /// The next byte the replica needs.
        expected: u64,
        /// The byte the chunk started at.
        got: u64,
    },
    /// A chunk carried bytes that do not decode as journal records.
    Corrupt(WalError),
    /// The primary reported progress but sent an empty chunk.
    Stalled {
        /// Where replication stopped.
        offset: u64,
    },
    /// The replica drained the journal but its memory revision does
    /// not match what the primary reported — the streams diverged.
    RevisionMismatch {
        /// The replica's memory revision.
        ours: u64,
        /// The revision the primary stamped on the final chunk.
        primary: u64,
    },
    /// The pull itself failed.
    Transport(ServeError),
}

impl std::fmt::Display for ReplicaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplicaError::OffsetGap { expected, got } => {
                write!(f, "chunk starts at {got}, replica needs {expected}")
            }
            ReplicaError::Corrupt(e) => write!(f, "corrupt replication chunk: {e}"),
            ReplicaError::Stalled { offset } => {
                write!(f, "empty chunk at {offset} with journal bytes remaining")
            }
            ReplicaError::RevisionMismatch { ours, primary } => {
                write!(f, "replica revision {ours} != primary revision {primary}")
            }
            ReplicaError::Transport(e) => write!(f, "replication pull failed: {e}"),
        }
    }
}

impl std::error::Error for ReplicaError {}

impl From<ServeError> for ReplicaError {
    fn from(e: ServeError) -> Self {
        ReplicaError::Transport(e)
    }
}

/// The state a read replica serves: journal-rebuilt memory and
/// forecasts plus its own revision-validated query cache.
pub struct ReplicaState {
    hosts: Vec<String>,
    registry: Registry,
    memory: Memory,
    service: ForecastService,
    cache: QueryCache,
    config: GridMonitorConfig,
    requests: u64,
    /// Journal bytes applied so far — the offset of the next pull.
    applied: u64,
    /// Journal length the primary last reported.
    primary_total: u64,
    /// Memory revision the primary last reported.
    primary_revision: u64,
    /// The primary's simulation clock at the last chunk — what this
    /// replica judges staleness against.
    primary_now: f64,
}

impl ReplicaState {
    /// Creates an empty replica of a primary monitoring `hosts`,
    /// registering the same four metrics per host in the same order so
    /// resource ids in the journal resolve identically.
    pub fn new(hosts: &[&str], config: GridMonitorConfig) -> Self {
        let mut registry = Registry::new();
        for host in hosts {
            registry.register(*host, Metric::CpuAvailabilityLoad);
            registry.register(*host, Metric::CpuAvailabilityVmstat);
            registry.register(*host, Metric::CpuAvailabilityHybrid);
            registry.register(*host, Metric::LoadAverage);
        }
        Self {
            hosts: hosts.iter().map(|h| h.to_string()).collect(),
            registry,
            memory: Memory::new(config.memory),
            service: ForecastService::new(config.interval_coverage),
            cache: QueryCache::new(),
            config,
            requests: 0,
            applied: 0,
            primary_total: 0,
            primary_revision: 0,
            primary_now: 0.0,
        }
    }

    /// The replicated memory (for fingerprint comparisons).
    pub fn memory(&self) -> &Memory {
        &self.memory
    }

    /// The replicated forecast service.
    pub fn forecasts(&self) -> &ForecastService {
        &self.service
    }

    /// The replica's query cache (for hit/miss accounting).
    pub fn cache(&self) -> &QueryCache {
        &self.cache
    }

    /// Journal bytes applied so far.
    pub fn applied(&self) -> u64 {
        self.applied
    }

    /// Whether the replica has applied every journal byte the primary
    /// last reported. A `true` here is a point-in-time fact: the
    /// primary may have moved on since the last pull.
    pub fn synced(&self) -> bool {
        self.applied == self.primary_total
    }

    /// Applies one replication chunk. Chunks must arrive in order and
    /// decode cleanly; anything else is a typed error and the replica
    /// state is left at the last good record.
    pub fn apply_chunk(&mut self, chunk: &WalChunkReply) -> Result<u64, ReplicaError> {
        if chunk.offset != self.applied {
            return Err(ReplicaError::OffsetGap {
                expected: self.applied,
                got: chunk.offset,
            });
        }
        let memory = &mut self.memory;
        let service = &mut self.service;
        let outcome = replay(&chunk.bytes, 0, |rec| {
            memory.apply(rec);
            match *rec {
                WalRecord::Append { id, time, value } => service.observe(id, time, value),
                WalRecord::Gap { id, time } => service.note_gap(id, time),
                WalRecord::Drop { .. } => {}
            }
        });
        self.applied += outcome.end as u64;
        if let Some(e) = outcome.error {
            return Err(ReplicaError::Corrupt(e));
        }
        debug_assert_eq!(outcome.end, chunk.bytes.len(), "chunks end on boundaries");
        self.primary_total = chunk.total;
        self.primary_revision = chunk.revision;
        self.primary_now = chunk.now;
        Ok(outcome.records)
    }

    /// Pulls and applies journal chunks until the replica has caught up
    /// with the primary, then cross-checks the memory revision the
    /// primary reported. Returns the number of records applied.
    pub fn sync<T: Transport>(&mut self, primary: &mut T) -> Result<u64, ReplicaError> {
        let mut records = 0;
        loop {
            let chunk = primary.wal_since(self.applied, MAX_WAL_CHUNK as u32)?;
            let got = chunk.bytes.len();
            records += self.apply_chunk(&chunk)?;
            if self.applied >= self.primary_total {
                if self.memory.global_revision() != self.primary_revision {
                    return Err(ReplicaError::RevisionMismatch {
                        ours: self.memory.global_revision(),
                        primary: self.primary_revision,
                    });
                }
                return Ok(records);
            }
            if got == 0 {
                return Err(ReplicaError::Stalled {
                    offset: self.applied,
                });
            }
        }
    }

    fn error(code: ErrorCode, message: impl Into<String>) -> Response {
        Response::Error(ErrorReply {
            code,
            message: message.into(),
        })
    }

    fn hybrid_id(&self, host: &str) -> Option<ResourceId> {
        self.registry.lookup(host, Metric::CpuAvailabilityHybrid)
    }

    fn dispatch_one(&mut self, req: &Request) -> Response {
        self.requests += 1;
        match req {
            Request::Forecast { host } => self.forecast(host),
            Request::Snapshot => Response::Snapshot(self.snapshot_reply()),
            Request::BestHost => self.best_host(),
            Request::SeriesTail { host, n } => self.series_tail(host, *n),
            Request::Stats => Response::Stats(self.stats_reply()),
            Request::WalSince { .. } => Self::error(
                ErrorCode::BadRequest,
                "replicas do not serve the journal; pull from the primary",
            ),
            Request::ForecastHorizon { host, k } => self.forecast_horizon(host, *k),
            Request::Batch(_) => Self::error(ErrorCode::BadRequest, "batches cannot nest"),
        }
    }

    /// Multi-step forecasts from the replica's replayed forecasters —
    /// the same panel state the primary holds once synced, so a failed-
    /// over client keeps getting horizons.
    fn forecast_horizon(&mut self, host: &str, k: u32) -> Response {
        let Some(id) = self.hybrid_id(host) else {
            return Self::error(ErrorCode::UnknownHost, format!("no such host: {host}"));
        };
        if k == 0 {
            return Self::error(ErrorCode::BadRequest, "horizon must be at least one step");
        }
        let k = (k as usize).min(MAX_HORIZON);
        let Some(steps) = self.service.forecast_horizon(id, k) else {
            return Self::error(
                ErrorCode::ColdForecast,
                format!("{host} has no replicated measurements yet"),
            );
        };
        let method = self
            .service
            .forecast(id)
            .map(|a| a.forecast.method.to_string())
            .unwrap_or_default();
        Response::ForecastHorizon(HorizonReply {
            host: host.to_string(),
            method,
            steps,
        })
    }

    fn forecast(&mut self, host: &str) -> Response {
        let Some(id) = self.hybrid_id(host) else {
            return Self::error(ErrorCode::UnknownHost, format!("no such host: {host}"));
        };
        let revision = self.service.revision(id);
        if let Some(reply) = self.cache.forecast(id, revision) {
            return Response::Forecast(reply);
        }
        let Some(answer) = self.service.forecast_at(id, self.primary_now) else {
            return Self::error(
                ErrorCode::ColdForecast,
                format!("{host} has no replicated measurements yet"),
            );
        };
        let reply = ForecastReply {
            host: host.to_string(),
            value: answer.forecast.value,
            method: answer.forecast.method.to_string(),
            interval: answer.interval.as_ref().map(|iv| (iv.lo, iv.hi)),
            observations: answer.observations,
            staleness: answer.staleness,
            confidence: answer.confidence,
        };
        self.cache.store_forecast(id, revision, reply.clone());
        Response::Forecast(reply)
    }

    /// The replica-wide revision cached snapshots validate against:
    /// any replicated measurement or gap moves it, and so does a
    /// primary clock advance (new chunk, same bytes).
    fn snapshot_revision(&self) -> u64 {
        self.memory
            .global_revision()
            .wrapping_add(self.service.global_revision())
            .wrapping_add(self.primary_now.to_bits())
    }

    fn current_snapshot(&mut self) -> &SnapshotReply {
        let revision = self.snapshot_revision();
        if self.cache.snapshot_ref(revision).is_none() {
            let time = self.primary_now;
            let bound = self.config.staleness_bound;
            let hosts = self
                .hosts
                .iter()
                .map(|host| {
                    let id = self
                        .registry
                        .lookup(host, Metric::CpuAvailabilityHybrid)
                        .expect("registered in new()");
                    let answer = self.service.forecast_at(id, time);
                    let degraded = answer.as_ref().is_none_or(|a| a.staleness > bound);
                    HostRow {
                        host: host.clone(),
                        latest: self.memory.latest(id).map(|p| p.value),
                        forecast: answer.map(|a| a.forecast.value),
                        degraded,
                    }
                })
                .collect();
            self.cache
                .store_snapshot(revision, SnapshotReply { time, hosts });
        }
        self.cache.stored_snapshot().expect("just stored")
    }

    fn snapshot_reply(&mut self) -> SnapshotReply {
        self.current_snapshot().clone()
    }

    fn best_host(&mut self) -> Response {
        let best = self
            .current_snapshot()
            .hosts
            .iter()
            .filter(|h| !h.degraded)
            .filter(|h| h.forecast.is_some_and(f64::is_finite))
            .max_by(|a, b| {
                let fa = a.forecast.expect("filtered");
                let fb = b.forecast.expect("filtered");
                fa.total_cmp(&fb)
            })
            .cloned();
        Response::BestHost(best)
    }

    fn series_tail(&mut self, host: &str, n: u32) -> Response {
        let Some(id) = self.hybrid_id(host) else {
            return Self::error(ErrorCode::UnknownHost, format!("no such host: {host}"));
        };
        let n = (n as usize).min(MAX_POINTS);
        let (times, values) = self.memory.tail(id, n);
        let points = times
            .iter()
            .zip(values)
            .map(|(&time, &value)| SeriesPoint { time, value })
            .collect();
        Response::SeriesTail(SeriesTailReply {
            host: host.to_string(),
            points,
        })
    }

    fn stats_reply(&self) -> StatsReply {
        StatsReply {
            requests: self.requests,
            cache_hits: self.cache.hits(),
            cache_misses: self.cache.misses(),
            invalidations: self.cache.invalidations(),
            // The replica's view of the primary clock, in slots.
            slots: (self.primary_now / self.config.cadence.measurement_period).round() as u64,
            hosts: self.hosts.len() as u32,
        }
    }
}

impl Dispatch for ReplicaState {
    fn dispatch(&mut self, req: &Request) -> Response {
        match req {
            Request::Batch(items) => {
                if items.len() > MAX_BATCH {
                    return Self::error(ErrorCode::BadRequest, "batch too large");
                }
                Response::Batch(items.iter().map(|r| self.dispatch_one(r)).collect())
            }
            other => self.dispatch_one(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::GridState;
    use crate::transport::InMemoryTransport;
    use nws_grid::{GridMonitor, GridMonitorConfig, Wal};
    use nws_sim::HostProfile;
    use std::sync::{Arc, Mutex};

    const HOSTS: [&str; 2] = ["thing1", "gremlin"];

    fn journaled_primary(steps: u64) -> InMemoryTransport {
        let mut grid = GridMonitor::new(
            &[HostProfile::Thing1, HostProfile::Gremlin],
            7,
            GridMonitorConfig::default(),
        );
        grid.attach_journal(Wal::new());
        grid.run_steps(steps);
        InMemoryTransport::new(Arc::new(Mutex::new(GridState::new(grid))))
    }

    #[test]
    fn replica_matches_the_primary_byte_for_byte() {
        let mut primary = journaled_primary(40);
        let mut replica = ReplicaState::new(&HOSTS, GridMonitorConfig::default());
        let records = replica.sync(&mut primary).expect("sync");
        assert!(records > 0);
        assert!(replica.synced());
        let st = primary.state().lock().unwrap();
        assert_eq!(
            replica.memory().fingerprint(),
            st.grid().memory().fingerprint(),
            "replicated memory is bit-identical"
        );
        assert_eq!(
            replica.forecasts().global_revision(),
            st.grid().forecasts().global_revision()
        );
    }

    #[test]
    fn replica_serves_the_primary_answers() {
        let mut primary = journaled_primary(40);
        let mut replica = ReplicaState::new(&HOSTS, GridMonitorConfig::default());
        replica.sync(&mut primary).expect("sync");
        for host in HOSTS {
            let from_primary = match primary
                .state()
                .lock()
                .unwrap()
                .dispatch(&Request::Forecast { host: host.into() })
            {
                Response::Forecast(r) => r,
                other => panic!("wrong reply: {other:?}"),
            };
            let from_replica = match replica.dispatch(&Request::Forecast { host: host.into() }) {
                Response::Forecast(r) => r,
                other => panic!("wrong reply: {other:?}"),
            };
            assert_eq!(from_primary, from_replica, "host {host}");
        }
        let snap_p = match primary.state().lock().unwrap().dispatch(&Request::Snapshot) {
            Response::Snapshot(s) => s,
            other => panic!("wrong reply: {other:?}"),
        };
        let snap_r = match replica.dispatch(&Request::Snapshot) {
            Response::Snapshot(s) => s,
            other => panic!("wrong reply: {other:?}"),
        };
        assert_eq!(snap_p, snap_r, "snapshots agree row for row");
    }

    #[test]
    fn replica_follows_an_advancing_primary_incrementally() {
        let mut primary = journaled_primary(10);
        let mut replica = ReplicaState::new(&HOSTS, GridMonitorConfig::default());
        replica.sync(&mut primary).expect("first sync");
        for _ in 0..5 {
            primary.state().lock().unwrap().tick(7);
            replica.sync(&mut primary).expect("catch up");
            let st = primary.state().lock().unwrap();
            assert_eq!(
                replica.memory().fingerprint(),
                st.grid().memory().fingerprint()
            );
        }
    }

    #[test]
    fn out_of_order_and_corrupt_chunks_are_typed_errors() {
        let mut primary = journaled_primary(20);
        let mut replica = ReplicaState::new(&HOSTS, GridMonitorConfig::default());
        let chunk = primary.wal_since(0, 4096).expect("chunk");
        // Skipping ahead is refused.
        let ahead = WalChunkReply {
            offset: chunk.bytes.len() as u64 + 8,
            ..chunk.clone()
        };
        assert!(matches!(
            replica.apply_chunk(&ahead),
            Err(ReplicaError::OffsetGap { expected: 0, .. })
        ));
        // A flipped byte is refused, keeping the records before it.
        let mut bad = chunk.clone();
        let n = bad.bytes.len();
        bad.bytes[n / 2] ^= 0x40;
        match replica.apply_chunk(&bad) {
            Err(ReplicaError::Corrupt(_)) => {}
            other => panic!("wrong result: {other:?}"),
        }
        assert!(replica.applied() > 0, "valid prefix was kept");
        assert!(replica.applied() <= (n / 2) as u64 + 8);
    }

    #[test]
    fn replica_refuses_to_serve_the_journal() {
        let mut replica = ReplicaState::new(&HOSTS, GridMonitorConfig::default());
        match replica.dispatch(&Request::WalSince { offset: 0, max: 64 }) {
            Response::Error(e) => assert_eq!(e.code, ErrorCode::BadRequest),
            other => panic!("wrong reply: {other:?}"),
        }
    }
}
