//! The TCP server: a threaded `std::net` listener speaking the wire
//! protocol in front of any shared [`Dispatch`] state — the primary
//! [`GridState`] by default, or a [`ReplicaState`](crate::ReplicaState)
//! fed from a primary's journal.
//!
//! One thread per live connection, bounded by
//! [`ServerConfig::max_connections`] (derived from the deterministic
//! runtime's thread count by default), with per-connection read/write
//! deadlines so a stalled peer cannot pin a handler thread forever.

use crate::state::{Dispatch, GridState};
use nws_wire::{
    encode_response_frame, read_request, write_response, ErrorCode, ErrorReply, Response, WireError,
};
use std::io::{BufReader, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tunables for [`NwsServer`].
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// How long a connection may sit idle between requests before the
    /// server hangs up.
    pub read_timeout: Duration,
    /// How long a single response write may take.
    pub write_timeout: Duration,
    /// Wall-clock budget for receiving one complete request frame.
    /// `read_timeout` bounds each read(2), so a peer trickling one
    /// byte per timeout window could pin a handler thread forever;
    /// this deadline caps the whole frame. Keep it at or above
    /// `read_timeout` or idle keep-alive connections will be cut early.
    pub request_deadline: Duration,
    /// Connections served concurrently; excess connections are
    /// answered and closed immediately.
    pub max_connections: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            request_deadline: Duration::from_secs(10),
            // Bound in-flight work by the runtime's configured
            // parallelism (never below two, so one slow client can't
            // starve the server in single-threaded runs).
            max_connections: nws_runtime::threads().max(2),
        }
    }
}

/// Accept-loop counters, shared with the server handle so a load
/// harness can watch admission behavior while traffic runs. The
/// threaded server and the epoll reactor keep them the same way:
/// `accepted`/`active` move at admission, `refused` at the cap.
#[derive(Debug, Default)]
pub struct ServeCounters {
    /// Connections admitted to service.
    pub(crate) accepted: AtomicU64,
    /// Connections turned away at the cap with a typed `Overloaded`.
    pub(crate) refused: AtomicU64,
    /// Connections being served right now.
    pub(crate) active: AtomicUsize,
}

/// The typed refusal an over-capacity connection is answered with —
/// shared by the threaded server's detached refusal path and the
/// reactor's accept gate, so the refusal bytes are identical.
pub(crate) fn overload_response() -> Response {
    Response::Error(ErrorReply {
        code: ErrorCode::Overloaded,
        message: "server at connection capacity".to_string(),
    })
}

/// A running forecast server bound to a local port, generic over what
/// it serves (the primary grid by default).
pub struct NwsServer<D: Dispatch + 'static = GridState> {
    addr: SocketAddr,
    state: Arc<Mutex<D>>,
    shutdown: Arc<AtomicBool>,
    counters: Arc<ServeCounters>,
    accept_thread: Option<JoinHandle<()>>,
}

impl<D: Dispatch + 'static> NwsServer<D> {
    /// Spawns the accept loop on an OS-assigned localhost port.
    pub fn spawn(state: D, config: ServerConfig) -> std::io::Result<Self> {
        Self::spawn_shared(Arc::new(Mutex::new(state)), config)
    }

    /// Spawns the accept loop over state shared with the caller (so a
    /// driver can keep ticking the grid while the server runs).
    pub fn spawn_shared(state: Arc<Mutex<D>>, config: ServerConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        // Poll the shutdown flag between accepts instead of blocking
        // forever in accept(2).
        listener.set_nonblocking(true)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let counters = Arc::new(ServeCounters::default());
        let accept_thread = {
            let state = Arc::clone(&state);
            let shutdown = Arc::clone(&shutdown);
            let counters = Arc::clone(&counters);
            std::thread::spawn(move || accept_loop(listener, state, shutdown, counters, config))
        };
        Ok(Self {
            addr,
            state,
            shutdown,
            counters,
            accept_thread: Some(accept_thread),
        })
    }

    /// The address clients should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared state, for ticking the grid or reading cache stats
    /// while the server runs.
    pub fn state(&self) -> &Arc<Mutex<D>> {
        &self.state
    }

    /// Connections admitted to a handler thread so far.
    pub fn accepted(&self) -> u64 {
        self.counters.accepted.load(Ordering::SeqCst)
    }

    /// Connections turned away at the cap with a typed `Overloaded`.
    pub fn refused(&self) -> u64 {
        self.counters.refused.load(Ordering::SeqCst)
    }

    /// Handler threads serving connections right now.
    pub fn active_connections(&self) -> usize {
        self.counters.active.load(Ordering::SeqCst)
    }

    /// Stops accepting and joins the accept thread. Handler threads
    /// for already-open connections hang up at their next request
    /// boundary (or drain on their read deadlines if idle), so a
    /// shutdown looks like a crash to connected clients.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
    }
}

impl<D: Dispatch + 'static> Drop for NwsServer<D> {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop<D: Dispatch + 'static>(
    listener: TcpListener,
    state: Arc<Mutex<D>>,
    shutdown: Arc<AtomicBool>,
    counters: Arc<ServeCounters>,
    config: ServerConfig,
) {
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                if counters.active.load(Ordering::SeqCst) >= config.max_connections {
                    // Over the in-flight bound: refuse politely, but
                    // never from this thread — a peer that connects and
                    // then refuses to read could otherwise stall the
                    // accept loop for a full write timeout.
                    counters.refused.fetch_add(1, Ordering::SeqCst);
                    std::thread::spawn(move || refuse(stream));
                    continue;
                }
                counters.accepted.fetch_add(1, Ordering::SeqCst);
                counters.active.fetch_add(1, Ordering::SeqCst);
                let state = Arc::clone(&state);
                let counters = Arc::clone(&counters);
                let shutdown = Arc::clone(&shutdown);
                std::thread::spawn(move || {
                    handle_conn(stream, state, shutdown, config);
                    counters.active.fetch_sub(1, Ordering::SeqCst);
                });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => break,
        }
    }
}

/// Answers one over-capacity connection with a typed `Overloaded`
/// frame, then closes. Runs on a short-lived detached thread with its
/// own tight write deadline: the refusal is best-effort, and the close
/// is the real signal.
fn refuse(stream: TcpStream) {
    let _ = stream.set_write_timeout(Some(Duration::from_millis(250)));
    let mut w = BufWriter::new(stream);
    if write_response(&mut w, &overload_response()).is_ok() {
        let _ = w.flush();
    }
}

/// A [`TcpStream`] reader that layers a per-request wall-clock
/// deadline on top of the per-read timeout. Each `read` narrows the
/// socket timeout to whatever is left of the armed budget, so a peer
/// trickling a frame one byte at a time runs out of wall clock instead
/// of resetting the idle timer with every byte.
struct DeadlineStream {
    stream: TcpStream,
    per_read: Duration,
    deadline: Instant,
}

impl DeadlineStream {
    fn new(stream: TcpStream, per_read: Duration) -> Self {
        Self {
            stream,
            per_read,
            deadline: Instant::now(),
        }
    }

    /// Starts a fresh budget; called at each request boundary.
    fn arm(&mut self, budget: Duration) {
        self.deadline = Instant::now() + budget;
    }
}

impl Read for DeadlineStream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let remaining = self.deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::TimedOut,
                "request deadline exceeded",
            ));
        }
        // Never pass a zero timeout: that would mean "block forever".
        let slice = remaining.min(self.per_read).max(Duration::from_millis(1));
        self.stream.set_read_timeout(Some(slice))?;
        self.stream.read(buf)
    }
}

/// Serves one connection: read a request frame, dispatch, write the
/// response frame, repeat until the peer hangs up, idles past the read
/// deadline, or sends a malformed frame.
fn handle_conn<D: Dispatch>(
    stream: TcpStream,
    state: Arc<Mutex<D>>,
    shutdown: Arc<AtomicBool>,
    config: ServerConfig,
) {
    if stream
        .set_write_timeout(Some(config.write_timeout))
        .is_err()
    {
        return;
    }
    let reader_stream = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut reader = BufReader::new(DeadlineStream::new(reader_stream, config.read_timeout));
    let mut writer = BufWriter::new(stream);
    // One encode scratch per connection: every reply frame is built in
    // this buffer, so steady-state serving does not allocate per reply.
    let mut scratch = Vec::new();
    loop {
        // Arm the whole-frame budget at the request boundary. An idle
        // keep-alive peer is still cut by the per-read timeout first
        // (the deadline is the larger of the two by default); only a
        // byte-trickling writer feels the difference.
        reader.get_mut().arm(config.request_deadline);
        let req = match read_request(&mut reader) {
            Ok(req) => req,
            Err(WireError::Truncated) | Err(WireError::Io(_)) => {
                // Peer hung up or idled out; nothing more to say.
                return;
            }
            Err(e) => {
                // Protocol violation: answer with a typed error frame,
                // then close — the stream can no longer be trusted to
                // be frame-aligned.
                let resp = Response::Error(ErrorReply {
                    code: ErrorCode::BadRequest,
                    message: format!("malformed request: {e}"),
                });
                encode_response_frame(&mut scratch, &resp);
                if writer.write_all(&scratch).is_ok() {
                    let _ = writer.flush();
                }
                return;
            }
        };
        if shutdown.load(Ordering::SeqCst) {
            // The server is going down: hang up without answering, the
            // way a killed process would.
            return;
        }
        scratch.clear();
        state
            .lock()
            .expect("server state poisoned")
            .dispatch_frame(&req, &mut scratch);
        if writer.write_all(&scratch).is_err() || writer.flush().is_err() {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::Transport;
    use crate::{ClientConfig, NwsClient};
    use nws_grid::{GridMonitor, GridMonitorConfig};
    use nws_sim::HostProfile;
    use nws_wire::Request;

    fn warm_server(config: ServerConfig) -> NwsServer {
        let mut grid = GridMonitor::new(
            &[HostProfile::Thing1, HostProfile::Gremlin],
            21,
            GridMonitorConfig::default(),
        );
        grid.run_steps(50);
        NwsServer::spawn(GridState::new(grid), config).expect("bind localhost")
    }

    #[test]
    fn serves_typed_queries_over_tcp() {
        let server = warm_server(ServerConfig::default());
        let mut client =
            NwsClient::connect(server.addr(), ClientConfig::default()).expect("connect");
        let fc = client.forecast("thing1").expect("forecast");
        assert!((0.0..=1.0).contains(&fc.value));
        let snap = client.snapshot().expect("snapshot");
        assert_eq!(snap.hosts.len(), 2);
        let stats = client.stats().expect("stats");
        assert!(stats.requests >= 2);
    }

    #[test]
    fn malformed_frames_get_an_error_frame_not_a_hang() {
        use std::io::{Read, Write};
        let server = warm_server(ServerConfig::default());
        let mut raw = TcpStream::connect(server.addr()).expect("connect");
        raw.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        // Valid header, garbage payload: tag 0xFF is no known request.
        let mut frame = Vec::new();
        frame.extend_from_slice(&nws_wire::MAGIC.to_be_bytes());
        frame.push(nws_wire::VERSION);
        frame.push(0); // request kind
        frame.extend_from_slice(&1u32.to_le_bytes());
        frame.push(0xFF);
        raw.write_all(&frame).unwrap();
        let mut reply = Vec::new();
        raw.read_to_end(&mut reply)
            .expect("server answers then closes");
        let (resp, _) = nws_wire::read_response(&mut reply.as_slice()).expect("error frame");
        match resp {
            Response::Error(e) => assert_eq!(e.code, ErrorCode::BadRequest),
            other => panic!("wrong reply: {other:?}"),
        }
    }

    #[test]
    fn connection_cap_refuses_politely() {
        let server = warm_server(ServerConfig {
            max_connections: 0, // everything is over capacity
            ..ServerConfig::default()
        });
        let mut client = NwsClient::connect(
            server.addr(),
            ClientConfig {
                retries: 0,
                ..ClientConfig::default()
            },
        )
        .expect("connect");
        match client.call(&Request::Stats) {
            Ok(Response::Error(e)) => {
                assert_eq!(e.code, ErrorCode::Overloaded);
                assert!(e.message.contains("capacity"));
            }
            other => panic!("wrong result: {other:?}"),
        }
        assert!(server.refused() >= 1);
        assert_eq!(server.accepted(), 0);
    }

    #[test]
    fn refusal_is_prompt_even_against_a_peer_that_never_reads() {
        let server = warm_server(ServerConfig {
            max_connections: 0,
            ..ServerConfig::default()
        });
        // A hostile peer: connects, never reads its refusal. With the
        // refusal on a detached thread, the accept loop must keep
        // serving other refusals promptly instead of blocking on this
        // socket's write path.
        let _hostile = TcpStream::connect(server.addr()).expect("connect");
        std::thread::sleep(Duration::from_millis(50));
        let started = Instant::now();
        let mut client = NwsClient::connect(
            server.addr(),
            ClientConfig {
                retries: 0,
                io_timeout: Duration::from_secs(2),
                ..ClientConfig::default()
            },
        )
        .expect("connect");
        match client.call(&Request::Stats) {
            Ok(Response::Error(e)) => assert_eq!(e.code, ErrorCode::Overloaded),
            other => panic!("wrong result: {other:?}"),
        }
        assert!(
            started.elapsed() < Duration::from_millis(500),
            "refusal took {:?}",
            started.elapsed()
        );
    }

    #[test]
    fn connection_churn_under_a_tight_cap() {
        let server = warm_server(ServerConfig {
            max_connections: 2,
            ..ServerConfig::default()
        });
        let quick = ClientConfig {
            retries: 0,
            io_timeout: Duration::from_secs(2),
            ..ClientConfig::default()
        };
        // Two idle holders pin the cap.
        let hold_a = NwsClient::connect(server.addr(), quick).expect("holder a");
        let mut hold_b = NwsClient::connect(server.addr(), quick).expect("holder b");
        hold_b.stats().expect("holders are live");
        std::thread::sleep(Duration::from_millis(50));
        // A third connection is refused with the typed overload close.
        let mut third = NwsClient::connect(server.addr(), quick).expect("connect");
        match third.call(&Request::Stats) {
            Ok(Response::Error(e)) => assert_eq!(e.code, ErrorCode::Overloaded),
            other => panic!("wrong result: {other:?}"),
        }
        // Releasing a holder frees a slot; fresh connections serve again.
        drop(hold_a);
        let deadline = Instant::now() + Duration::from_secs(2);
        loop {
            let mut retry = NwsClient::connect(server.addr(), quick).expect("connect");
            match retry.call(&Request::Stats) {
                Ok(Response::Stats(_)) => break,
                Ok(Response::Error(e)) if e.code == ErrorCode::Overloaded => {
                    // The freed slot may lag the socket close a moment.
                    assert!(Instant::now() < deadline, "slot never freed");
                    std::thread::sleep(Duration::from_millis(20));
                }
                other => panic!("wrong result: {other:?}"),
            }
        }
        // Rapid sequential churn: every connect-call-drop cycle serves.
        for _ in 0..20 {
            let mut c = NwsClient::connect(server.addr(), quick).expect("connect");
            let deadline = Instant::now() + Duration::from_secs(2);
            loop {
                match c.call(&Request::Stats) {
                    Ok(Response::Stats(_)) => break,
                    Ok(Response::Error(e)) if e.code == ErrorCode::Overloaded => {
                        assert!(Instant::now() < deadline, "churn wedged the server");
                        std::thread::sleep(Duration::from_millis(10));
                        c = NwsClient::connect(server.addr(), quick).expect("reconnect");
                    }
                    other => panic!("wrong result: {other:?}"),
                }
            }
        }
        assert!(server.accepted() >= 20, "churn cycles were served");
        assert!(server.refused() >= 1, "the cap actually fired");
    }

    #[test]
    fn shutdown_joins_and_frees_the_port() {
        let mut server = warm_server(ServerConfig::default());
        let addr = server.addr();
        server.shutdown();
        // The accept loop is gone; a fresh connection gets no answer.
        match TcpStream::connect(addr) {
            Err(_) => {}
            Ok(stream) => {
                // Connection may still be accepted by the OS backlog,
                // but no handler will ever answer; a read must fail or
                // return EOF rather than data.
                use std::io::Read;
                stream
                    .set_read_timeout(Some(Duration::from_millis(300)))
                    .unwrap();
                let mut buf = [0u8; 1];
                let mut s = stream;
                assert!(matches!(s.read(&mut buf), Ok(0) | Err(_)));
            }
        }
    }
}
