//! Server-side state and request dispatch.
//!
//! [`GridState`] owns the grid monitor and the [`QueryCache`] and turns
//! each decoded [`Request`] into a [`Response`]. Dispatch is pure with
//! respect to the grid's seed and the request sequence: the same
//! requests against the same grid state produce byte-identical
//! responses on every transport and at every thread count (the grid's
//! parallel advance is itself bit-deterministic).

use crate::cache::QueryCache;
use nws_grid::wal::MAX_RECORD_FRAME;
use nws_grid::{GridMonitor, Metric};
use nws_wire::{
    append_response_frame, begin_response_frame, end_response_frame, ErrorCode, ErrorReply,
    ForecastReply, HorizonReply, HostRow, Request, Response, SeriesPoint, SeriesTailReply,
    SnapshotReply, StatsReply, WalChunkReply, Writer, MAX_BATCH, MAX_HORIZON, MAX_POINTS,
    MAX_WAL_CHUNK,
};

/// Anything that can answer a decoded request — the primary
/// ([`GridState`]) and read replicas
/// ([`ReplicaState`](crate::ReplicaState)) both implement it, so the
/// TCP server, the epoll reactor, and the in-memory transport serve
/// either one through the same machinery.
pub trait Dispatch: Send {
    /// Turns one decoded request into a response.
    fn dispatch(&mut self, req: &Request) -> Response;

    /// Appends the complete response frame (header + payload) for
    /// `req` to `out` without clearing it — the write-queue form every
    /// transport serves through, so replies to pipelined requests
    /// stack up in request order. The default builds the [`Response`]
    /// and encodes it; implementations may override with zero-copy
    /// fast paths, but the appended bytes *and* every observable state
    /// change must be identical to the default — the equivalence tests
    /// pin both.
    fn dispatch_frame(&mut self, req: &Request, out: &mut Vec<u8>) {
        let resp = self.dispatch(req);
        append_response_frame(out, &resp);
    }
}

/// The state a forecast server fronts: the grid, the cache, and the
/// request accounting.
pub struct GridState {
    grid: GridMonitor,
    cache: QueryCache,
    requests: u64,
    hosts: u32,
}

fn error(code: ErrorCode, message: impl Into<String>) -> Response {
    Response::Error(ErrorReply {
        code,
        message: message.into(),
    })
}

fn encode_error(w: &mut Writer, code: ErrorCode, message: impl Into<String>) {
    error(code, message).encode_into(w);
}

impl GridState {
    /// Wraps a grid monitor for serving.
    pub fn new(grid: GridMonitor) -> Self {
        let hosts = grid.snapshot().hosts.len() as u32;
        Self {
            grid,
            cache: QueryCache::new(),
            requests: 0,
            hosts,
        }
    }

    /// The grid being served.
    pub fn grid(&self) -> &GridMonitor {
        &self.grid
    }

    /// Advances the simulated grid by `steps` measurement slots. Every
    /// slot bumps the revision counters, so cached answers computed
    /// before the tick stop validating — the measurement-append
    /// invalidation the cache is built around.
    pub fn tick(&mut self, steps: u64) {
        self.grid.run_steps(steps);
    }

    /// The cache (for tests and reporting).
    pub fn cache(&self) -> &QueryCache {
        &self.cache
    }

    /// Answers one request. Batches are answered element-wise in
    /// order; everything else is a single reply.
    pub fn dispatch(&mut self, req: &Request) -> Response {
        match req {
            Request::Batch(items) => {
                if items.len() > MAX_BATCH {
                    // Decode already bounds this; guard anyway for
                    // requests constructed in-process.
                    return error(ErrorCode::BadRequest, "batch too large");
                }
                Response::Batch(items.iter().map(|r| self.dispatch_one(r)).collect())
            }
            other => self.dispatch_one(other),
        }
    }

    fn dispatch_one(&mut self, req: &Request) -> Response {
        self.requests += 1;
        match req {
            Request::Forecast { host } => self.forecast(host),
            Request::Snapshot => Response::Snapshot(self.snapshot_reply()),
            Request::BestHost => self.best_host(),
            Request::SeriesTail { host, n } => self.series_tail(host, *n),
            Request::Stats => Response::Stats(self.stats_reply()),
            Request::WalSince { offset, max } => self.wal_since(*offset, *max),
            Request::ForecastHorizon { host, k } => self.forecast_horizon(host, *k),
            Request::Batch(_) => error(ErrorCode::BadRequest, "batches cannot nest"),
        }
    }

    /// Serves a multi-step forecast from the currently selected panel
    /// predictor. Horizons are recomputed per request (no cache row):
    /// iterating a fitted AR/ARMA model `k` steps is cheaper than the
    /// bookkeeping a revision-checked cache entry would add.
    fn forecast_horizon(&mut self, host: &str, k: u32) -> Response {
        let Some(id) = self
            .grid
            .registry()
            .lookup(host, Metric::CpuAvailabilityHybrid)
        else {
            return error(ErrorCode::UnknownHost, format!("no such host: {host}"));
        };
        if k == 0 {
            return error(ErrorCode::BadRequest, "horizon must be at least one step");
        }
        let k = (k as usize).min(MAX_HORIZON);
        let Some(steps) = self.grid.forecasts().forecast_horizon(id, k) else {
            return error(
                ErrorCode::ColdForecast,
                format!("{host} has no measurements yet"),
            );
        };
        let method = self
            .grid
            .forecasts()
            .forecast(id)
            .map(|a| a.forecast.method.to_string())
            .unwrap_or_default();
        Response::ForecastHorizon(HorizonReply {
            host: host.to_string(),
            method,
            steps,
        })
    }

    /// Serves one bounded chunk of the journal for replication. The
    /// chunk always ends on a record boundary, so a replica can apply
    /// it without buffering partial frames across replies.
    fn wal_since(&mut self, offset: u64, max: u32) -> Response {
        let Some(wal) = self.grid.journal() else {
            return error(ErrorCode::BadRequest, "no journal attached to this server");
        };
        let total = wal.len() as u64;
        let start = wal.start_offset() as u64;
        if offset < start {
            return error(
                ErrorCode::BadRequest,
                format!("wal offset {offset} was rotated away; journal starts at {start}"),
            );
        }
        if offset > total {
            return error(
                ErrorCode::BadRequest,
                format!("wal offset {offset} is past the journal end {total}"),
            );
        }
        let max = (max as usize).clamp(MAX_RECORD_FRAME, MAX_WAL_CHUNK);
        let bytes = wal.chunk(offset as usize, max).to_vec();
        Response::WalChunk(WalChunkReply {
            offset,
            total,
            revision: self.grid.memory().global_revision(),
            now: self.grid.now(),
            bytes,
        })
    }

    fn forecast(&mut self, host: &str) -> Response {
        let Some(id) = self
            .grid
            .registry()
            .lookup(host, Metric::CpuAvailabilityHybrid)
        else {
            return error(ErrorCode::UnknownHost, format!("no such host: {host}"));
        };
        let revision = self.grid.forecasts().revision(id);
        if let Some(reply) = self.cache.forecast(id, revision) {
            return Response::Forecast(reply);
        }
        let now = self.grid.now();
        let Some(answer) = self.grid.forecasts().forecast_at(id, now) else {
            return error(
                ErrorCode::ColdForecast,
                format!("{host} has no measurements yet"),
            );
        };
        let reply = ForecastReply {
            host: host.to_string(),
            value: answer.forecast.value,
            method: answer.forecast.method.to_string(),
            interval: answer.interval.as_ref().map(|iv| (iv.lo, iv.hi)),
            observations: answer.observations,
            staleness: answer.staleness,
            confidence: answer.confidence,
        };
        self.cache.store_forecast(id, revision, reply.clone());
        Response::Forecast(reply)
    }

    /// The current snapshot reply, by reference: one cache probe (with
    /// the usual hit/miss accounting), recomputed and stored only when
    /// the grid revision moved. Callers clone what they actually need —
    /// the whole reply for a `Snapshot` answer, a single row for
    /// best-host selection.
    fn current_snapshot(&mut self) -> &SnapshotReply {
        let revision = self.grid.revision();
        if self.cache.snapshot_ref(revision).is_none() {
            let snap = self.grid.snapshot();
            let reply = SnapshotReply {
                time: snap.time,
                hosts: snap
                    .hosts
                    .iter()
                    .map(|h| HostRow {
                        host: h.host.clone(),
                        latest: h.latest_hybrid,
                        forecast: h.forecast.as_ref().map(|a| a.forecast.value),
                        degraded: h.degraded,
                    })
                    .collect(),
            };
            self.cache.store_snapshot(revision, reply);
        }
        self.cache.stored_snapshot().expect("just stored")
    }

    fn snapshot_reply(&mut self) -> SnapshotReply {
        self.current_snapshot().clone()
    }

    fn best_host(&mut self) -> Response {
        // Same placement rule as `GridSnapshot::best_host`, computed
        // over the (cached) snapshot rows: non-degraded hosts with a
        // finite forecast, highest availability wins. Only the winning
        // row is cloned out of the cache.
        let best = self
            .current_snapshot()
            .hosts
            .iter()
            .filter(|h| !h.degraded)
            .filter(|h| h.forecast.is_some_and(f64::is_finite))
            .max_by(|a, b| {
                let fa = a.forecast.expect("filtered");
                let fb = b.forecast.expect("filtered");
                fa.total_cmp(&fb)
            })
            .cloned();
        Response::BestHost(best)
    }

    fn series_tail(&mut self, host: &str, n: u32) -> Response {
        let Some(id) = self
            .grid
            .registry()
            .lookup(host, Metric::CpuAvailabilityHybrid)
        else {
            return error(ErrorCode::UnknownHost, format!("no such host: {host}"));
        };
        let n = (n as usize).min(MAX_POINTS);
        // Borrowed column slices straight out of the ring — the reply's
        // points are built without an intermediate Vec<TimePoint>.
        let (times, values) = self.grid.memory().tail(id, n);
        let points = times
            .iter()
            .zip(values)
            .map(|(&time, &value)| SeriesPoint { time, value })
            .collect();
        Response::SeriesTail(SeriesTailReply {
            host: host.to_string(),
            points,
        })
    }

    fn stats_reply(&self) -> StatsReply {
        StatsReply {
            requests: self.requests,
            cache_hits: self.cache.hits(),
            cache_misses: self.cache.misses(),
            invalidations: self.cache.invalidations(),
            slots: self.grid.slots(),
            hosts: self.hosts,
        }
    }

    /// Zero-copy reply encoder: appends the *payload* bytes of `req`'s
    /// reply to `w`, straight from cache and memory borrows — no
    /// intermediate `Response`, no cloned strings, no per-reply `Vec`.
    /// Mirrors [`GridState::dispatch`] exactly: same bytes, same
    /// request counting, same cache accounting. The `dispatch_frame`
    /// equivalence tests diff the two paths over the full vocabulary.
    fn encode_reply(&mut self, req: &Request, allow_batch: bool, w: &mut Writer) {
        if let Request::Batch(items) = req {
            if !allow_batch {
                self.requests += 1;
                return encode_error(w, ErrorCode::BadRequest, "batches cannot nest");
            }
            if items.len() > MAX_BATCH {
                return encode_error(w, ErrorCode::BadRequest, "batch too large");
            }
            w.put_u8(5);
            w.put_u32(items.len() as u32);
            for item in items {
                self.encode_reply(item, false, w);
            }
            return;
        }
        self.requests += 1;
        match req {
            Request::Forecast { host } => self.encode_forecast(host, w),
            Request::Snapshot => {
                // The whole reply is encoded from the cache borrow —
                // the reference path clones every host row instead.
                let snap = self.current_snapshot();
                w.put_u8(1);
                w.put_f64(snap.time);
                w.put_u32(snap.hosts.len() as u32);
                for row in &snap.hosts {
                    row.encode_into(w);
                }
            }
            Request::BestHost => {
                // Same placement rule as `best_host`, but the winning
                // row is encoded in place, not cloned out of the cache.
                let best = self
                    .current_snapshot()
                    .hosts
                    .iter()
                    .filter(|h| !h.degraded)
                    .filter(|h| h.forecast.is_some_and(f64::is_finite))
                    .max_by(|a, b| {
                        let fa = a.forecast.expect("filtered");
                        let fb = b.forecast.expect("filtered");
                        fa.total_cmp(&fb)
                    });
                w.put_u8(2);
                match best {
                    None => w.put_bool(false),
                    Some(row) => {
                        w.put_bool(true);
                        row.encode_into(w);
                    }
                }
            }
            Request::SeriesTail { host, n } => self.encode_series_tail(host, *n, w),
            Request::Stats => Response::Stats(self.stats_reply()).encode_into(w),
            Request::WalSince { offset, max } => self.encode_wal_since(*offset, *max, w),
            Request::ForecastHorizon { host, k } => {
                // Horizons are recomputed per request on both paths, so
                // encoding the built reply is already the fast path.
                self.forecast_horizon(host, *k).encode_into(w)
            }
            Request::Batch(_) => unreachable!("batches handled above"),
        }
    }

    fn encode_forecast(&mut self, host: &str, w: &mut Writer) {
        let Some(id) = self
            .grid
            .registry()
            .lookup(host, Metric::CpuAvailabilityHybrid)
        else {
            return encode_error(w, ErrorCode::UnknownHost, format!("no such host: {host}"));
        };
        let revision = self.grid.forecasts().revision(id);
        if let Some(reply) = self.cache.forecast_ref(id, revision) {
            w.put_u8(0);
            reply.encode_into(w);
            return;
        }
        let now = self.grid.now();
        let Some(answer) = self.grid.forecasts().forecast_at(id, now) else {
            return encode_error(
                w,
                ErrorCode::ColdForecast,
                format!("{host} has no measurements yet"),
            );
        };
        let reply = ForecastReply {
            host: host.to_string(),
            value: answer.forecast.value,
            method: answer.forecast.method.to_string(),
            interval: answer.interval.as_ref().map(|iv| (iv.lo, iv.hi)),
            observations: answer.observations,
            staleness: answer.staleness,
            confidence: answer.confidence,
        };
        w.put_u8(0);
        reply.encode_into(w);
        self.cache.store_forecast(id, revision, reply);
    }

    fn encode_series_tail(&mut self, host: &str, n: u32, w: &mut Writer) {
        let Some(id) = self
            .grid
            .registry()
            .lookup(host, Metric::CpuAvailabilityHybrid)
        else {
            return encode_error(w, ErrorCode::UnknownHost, format!("no such host: {host}"));
        };
        let n = (n as usize).min(MAX_POINTS);
        // Borrowed column slices straight out of the ring, encoded
        // pair by pair — no Vec<SeriesPoint>, no cloned host string.
        let (times, values) = self.grid.memory().tail(id, n);
        w.put_u8(3);
        w.put_str(host);
        w.put_u32(times.len() as u32);
        for (&time, &value) in times.iter().zip(values) {
            w.put_f64(time);
            w.put_f64(value);
        }
    }

    fn encode_wal_since(&mut self, offset: u64, max: u32, w: &mut Writer) {
        let Some(wal) = self.grid.journal() else {
            return encode_error(
                w,
                ErrorCode::BadRequest,
                "no journal attached to this server",
            );
        };
        let total = wal.len() as u64;
        let start = wal.start_offset() as u64;
        if offset < start {
            return encode_error(
                w,
                ErrorCode::BadRequest,
                format!("wal offset {offset} was rotated away; journal starts at {start}"),
            );
        }
        if offset > total {
            return encode_error(
                w,
                ErrorCode::BadRequest,
                format!("wal offset {offset} is past the journal end {total}"),
            );
        }
        let max = (max as usize).clamp(MAX_RECORD_FRAME, MAX_WAL_CHUNK);
        let revision = self.grid.memory().global_revision();
        let now = self.grid.now();
        // The chunk bytes flow from the journal to the write queue
        // without the reference path's intermediate copy.
        let bytes = wal.chunk(offset as usize, max);
        w.put_u8(7);
        w.put_u64(offset);
        w.put_u64(total);
        w.put_u64(revision);
        w.put_f64(now);
        w.put_bytes(bytes);
    }
}

impl Dispatch for GridState {
    fn dispatch(&mut self, req: &Request) -> Response {
        GridState::dispatch(self, req)
    }

    fn dispatch_frame(&mut self, req: &Request, out: &mut Vec<u8>) {
        let start = begin_response_frame(out);
        let mut w = Writer::with_buf(std::mem::take(out));
        self.encode_reply(req, true, &mut w);
        *out = w.finish();
        end_response_frame(out, start);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nws_sim::HostProfile;

    fn warm_state() -> GridState {
        let mut grid = GridMonitor::new(
            &[HostProfile::Thing1, HostProfile::Gremlin],
            7,
            nws_grid::GridMonitorConfig::default(),
        );
        grid.run_steps(30);
        GridState::new(grid)
    }

    #[test]
    fn forecast_is_served_and_cached_between_ticks() {
        let mut st = warm_state();
        let req = Request::Forecast {
            host: "thing1".into(),
        };
        let a = st.dispatch(&req);
        let b = st.dispatch(&req);
        assert_eq!(a, b, "same tick, same answer");
        assert_eq!(st.cache().hits(), 1);
        assert_eq!(st.cache().misses(), 1);
        match a {
            Response::Forecast(r) => {
                assert!((0.0..=1.0).contains(&r.value));
                assert_eq!(r.observations, 30);
                assert!(!r.method.is_empty());
            }
            other => panic!("wrong reply: {other:?}"),
        }
    }

    #[test]
    fn tick_invalidates_and_answers_move() {
        let mut st = warm_state();
        let req = Request::Forecast {
            host: "gremlin".into(),
        };
        let before = st.dispatch(&req);
        st.tick(1);
        let after = st.dispatch(&req);
        assert_eq!(st.cache().invalidations(), 1);
        match (before, after) {
            (Response::Forecast(b), Response::Forecast(a)) => {
                assert_eq!(a.observations, b.observations + 1);
            }
            other => panic!("wrong replies: {other:?}"),
        }
    }

    #[test]
    fn unknown_and_cold_hosts_get_typed_errors() {
        let mut st = warm_state();
        match st.dispatch(&Request::Forecast {
            host: "zardoz".into(),
        }) {
            Response::Error(e) => assert_eq!(e.code, ErrorCode::UnknownHost),
            other => panic!("wrong reply: {other:?}"),
        }
        let cold = GridMonitor::new(
            &[HostProfile::Kongo],
            3,
            nws_grid::GridMonitorConfig::default(),
        );
        let mut st = GridState::new(cold);
        match st.dispatch(&Request::Forecast {
            host: "kongo".into(),
        }) {
            Response::Error(e) => assert_eq!(e.code, ErrorCode::ColdForecast),
            other => panic!("wrong reply: {other:?}"),
        }
    }

    #[test]
    fn snapshot_best_host_and_series_tail_agree_with_the_grid() {
        let mut st = warm_state();
        let snap = match st.dispatch(&Request::Snapshot) {
            Response::Snapshot(s) => s,
            other => panic!("wrong reply: {other:?}"),
        };
        assert_eq!(snap.hosts.len(), 2);
        assert!(snap.hosts.iter().all(|h| !h.degraded));
        let grid_best = st.grid().snapshot().best_host().expect("warm").host.clone();
        match st.dispatch(&Request::BestHost) {
            Response::BestHost(Some(row)) => assert_eq!(row.host, grid_best),
            other => panic!("wrong reply: {other:?}"),
        }
        match st.dispatch(&Request::SeriesTail {
            host: "thing1".into(),
            n: 5,
        }) {
            Response::SeriesTail(t) => {
                assert_eq!(t.points.len(), 5);
                assert!(t.points.windows(2).all(|w| w[0].time < w[1].time));
            }
            other => panic!("wrong reply: {other:?}"),
        }
    }

    #[test]
    fn batch_answers_in_order_and_counts_each_item() {
        let mut st = warm_state();
        let resp = st.dispatch(&Request::Batch(vec![
            Request::Forecast {
                host: "thing1".into(),
            },
            Request::Forecast {
                host: "thing1".into(),
            },
            Request::Stats,
        ]));
        match resp {
            Response::Batch(items) => {
                assert_eq!(items.len(), 3);
                assert_eq!(items[0], items[1], "second item hits the cache");
                match &items[2] {
                    Response::Stats(s) => {
                        assert_eq!(s.requests, 3);
                        assert_eq!(s.cache_hits, 1);
                        assert_eq!(s.hosts, 2);
                        assert_eq!(s.slots, 30);
                    }
                    other => panic!("wrong reply: {other:?}"),
                }
            }
            other => panic!("wrong reply: {other:?}"),
        }
    }

    #[test]
    fn dispatch_frame_matches_the_response_reference_path() {
        // Two identically seeded states: one served through the
        // zero-copy frame path, one through the Response reference
        // path. Every reply must be byte-identical AND the two states
        // must agree on all observable accounting afterwards (the
        // final Stats reply carries the counters).
        let build = || {
            let mut grid = GridMonitor::new(
                &[HostProfile::Thing1, HostProfile::Gremlin],
                7,
                nws_grid::GridMonitorConfig::default(),
            );
            grid.attach_journal(nws_grid::Wal::new());
            grid.run_steps(30);
            GridState::new(grid)
        };
        let mut fast = build();
        let mut slow = build();
        let wal_end = slow.grid().journal().expect("attached").len() as u64;
        let vocabulary = vec![
            Request::Forecast {
                host: "thing1".into(),
            },
            Request::Forecast {
                host: "thing1".into(), // cache hit
            },
            Request::Forecast {
                host: "zardoz".into(), // unknown host
            },
            Request::Snapshot,
            Request::Snapshot, // cache hit
            Request::BestHost,
            Request::SeriesTail {
                host: "gremlin".into(),
                n: 5,
            },
            Request::SeriesTail {
                host: "zardoz".into(),
                n: 5,
            },
            Request::WalSince {
                offset: 0,
                max: 256,
            },
            Request::WalSince {
                offset: wal_end + 1, // past the end
                max: 256,
            },
            Request::ForecastHorizon {
                host: "thing1".into(),
                k: 12,
            },
            Request::ForecastHorizon {
                host: "zardoz".into(), // unknown host
                k: 12,
            },
            Request::ForecastHorizon {
                host: "thing1".into(),
                k: 0, // degenerate horizon
            },
            Request::Batch(vec![
                Request::Forecast {
                    host: "gremlin".into(),
                },
                Request::Stats,
                Request::BestHost,
            ]),
            Request::Batch(vec![Request::Batch(vec![])]), // nested
            Request::Batch(vec![Request::Stats; MAX_BATCH + 1]), // oversized
            Request::Stats,                               // final accounting pin
        ];
        for pass in 0..2 {
            for req in &vocabulary {
                let mut fast_bytes = vec![0xA5]; // dirty prefix: append semantics
                fast.dispatch_frame(req, &mut fast_bytes);
                let resp = Dispatch::dispatch(&mut slow, req);
                let mut slow_bytes = vec![0xA5];
                append_response_frame(&mut slow_bytes, &resp);
                assert_eq!(fast_bytes, slow_bytes, "pass {pass}: {req:?}");
            }
            // Tick between passes so invalidation/recompute paths are
            // compared too, not just the warm-cache ones.
            fast.tick(1);
            slow.tick(1);
        }
    }

    #[test]
    fn forecast_horizon_is_served_capped_and_typed() {
        let mut st = warm_state();
        let resp = st.dispatch(&Request::ForecastHorizon {
            host: "thing1".into(),
            k: 16,
        });
        let horizon = match resp {
            Response::ForecastHorizon(h) => h,
            other => panic!("wrong reply: {other:?}"),
        };
        assert_eq!(horizon.host, "thing1");
        assert_eq!(horizon.steps.len(), 16);
        assert!(!horizon.method.is_empty());
        // Step 1 agrees with the one-step forecast endpoint.
        match st.dispatch(&Request::Forecast {
            host: "thing1".into(),
        }) {
            Response::Forecast(f) => {
                assert_eq!(f.value, horizon.steps[0]);
                assert_eq!(f.method, horizon.method);
            }
            other => panic!("wrong reply: {other:?}"),
        }
        // Oversized horizons are capped at the protocol bound, not errored.
        match st.dispatch(&Request::ForecastHorizon {
            host: "thing1".into(),
            k: 10_000,
        }) {
            Response::ForecastHorizon(h) => assert_eq!(h.steps.len(), MAX_HORIZON),
            other => panic!("wrong reply: {other:?}"),
        }
        // Zero steps and unknown hosts are typed errors.
        match st.dispatch(&Request::ForecastHorizon {
            host: "thing1".into(),
            k: 0,
        }) {
            Response::Error(e) => assert_eq!(e.code, ErrorCode::BadRequest),
            other => panic!("wrong reply: {other:?}"),
        }
        match st.dispatch(&Request::ForecastHorizon {
            host: "zardoz".into(),
            k: 4,
        }) {
            Response::Error(e) => assert_eq!(e.code, ErrorCode::UnknownHost),
            other => panic!("wrong reply: {other:?}"),
        }
    }

    #[test]
    fn wal_since_without_a_journal_is_a_typed_error() {
        let mut st = warm_state();
        match st.dispatch(&Request::WalSince {
            offset: 0,
            max: 1024,
        }) {
            Response::Error(e) => assert_eq!(e.code, ErrorCode::BadRequest),
            other => panic!("wrong reply: {other:?}"),
        }
    }

    #[test]
    fn wal_since_streams_the_journal_in_bounded_chunks() {
        let mut grid = GridMonitor::new(
            &[HostProfile::Thing1, HostProfile::Gremlin],
            7,
            nws_grid::GridMonitorConfig::default(),
        );
        grid.attach_journal(nws_grid::Wal::new());
        grid.run_steps(30);
        let full = grid.journal().expect("attached").bytes().to_vec();
        assert!(!full.is_empty());
        let mut st = GridState::new(grid);
        let mut got = Vec::new();
        loop {
            let resp = st.dispatch(&Request::WalSince {
                offset: got.len() as u64,
                max: 256,
            });
            let chunk = match resp {
                Response::WalChunk(c) => c,
                other => panic!("wrong reply: {other:?}"),
            };
            assert_eq!(chunk.total, full.len() as u64);
            assert!(chunk.bytes.len() <= 256 + nws_grid::wal::MAX_RECORD_FRAME);
            got.extend_from_slice(&chunk.bytes);
            if got.len() as u64 >= chunk.total {
                break;
            }
            assert!(!chunk.bytes.is_empty(), "no progress before the end");
        }
        assert_eq!(got, full, "chunks concatenate to the exact journal");
        // An offset past the end is a typed error, not a panic.
        match st.dispatch(&Request::WalSince {
            offset: full.len() as u64 + 1,
            max: 256,
        }) {
            Response::Error(e) => assert_eq!(e.code, ErrorCode::BadRequest),
            other => panic!("wrong reply: {other:?}"),
        }
    }
}
