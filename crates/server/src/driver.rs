//! Engine-scheduled sensor ticks for a running server.
//!
//! Before this module, callers interleaved `state.tick(1)` with request
//! dispatch by hand — the serving loop owned the measurement schedule.
//! [`TickDriver`] moves that schedule onto the engine's [`Clock`] +
//! [`Cadence`] pair: the driver watches clock time, computes how many
//! measurement slots have come due on the shared cadence grid, and runs
//! exactly those through the grid (each tick bumps the revision counters,
//! so the [`QueryCache`](crate::QueryCache) invalidates precisely at
//! slot boundaries). Under a [`VirtualClock`] this reproduces the manual
//! `tick(1)`-per-round loops bit for bit; under a
//! [`WallClock`](nws_runtime::WallClock) the same driver paces a live
//! server in real time.

use crate::state::GridState;
use nws_runtime::{Cadence, Clock, VirtualClock};
use std::sync::{Arc, Mutex};

/// Schedules sensor ticks against shared server state from a clock.
pub struct TickDriver {
    state: Arc<Mutex<GridState>>,
    clock: Box<dyn Clock>,
    cadence: Cadence,
    /// Slots already delivered to the grid.
    ticked: u64,
}

impl TickDriver {
    /// A driver over shared state, paced by the given clock on the given
    /// slot grid. The clock starts at its own origin; slots before its
    /// current position are considered already delivered.
    pub fn new(state: Arc<Mutex<GridState>>, clock: Box<dyn Clock>, cadence: Cadence) -> Self {
        let ticked = (clock.now() / cadence.measurement_period).floor() as u64;
        Self {
            state,
            clock,
            cadence,
            ticked,
        }
    }

    /// A virtual-time driver on the grid's own cadence — the common
    /// simulation/test/bench configuration.
    pub fn virtual_time(state: Arc<Mutex<GridState>>) -> Self {
        let cadence = state.lock().expect("state").grid().cadence();
        Self::new(state, Box::new(VirtualClock::new()), cadence)
    }

    /// The shared state this driver ticks.
    pub fn state(&self) -> &Arc<Mutex<GridState>> {
        &self.state
    }

    /// Slots delivered so far.
    pub fn ticked(&self) -> u64 {
        self.ticked
    }

    /// Moves the clock to absolute time `t` and runs every measurement
    /// slot that came due, in one batch (the state lock is taken once).
    /// Returns how many slots were delivered.
    pub fn advance_to(&mut self, t: f64) -> u64 {
        self.clock.advance_to(t);
        let due = (self.clock.now() / self.cadence.measurement_period).floor() as u64;
        let steps = due.saturating_sub(self.ticked);
        if steps > 0 {
            self.state.lock().expect("state").tick(steps);
            self.ticked = due;
        }
        steps
    }

    /// Advances the clock by `seconds` and delivers the due slots.
    pub fn advance(&mut self, seconds: f64) -> u64 {
        let t = self.clock.now() + seconds;
        self.advance_to(t)
    }
}

impl std::fmt::Debug for TickDriver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TickDriver")
            .field("ticked", &self.ticked)
            .field("clock_now", &self.clock.now())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nws_grid::{GridMonitor, GridMonitorConfig};
    use nws_runtime::StepClock;
    use nws_sim::HostProfile;

    fn shared_state() -> Arc<Mutex<GridState>> {
        let grid = GridMonitor::new(
            &[HostProfile::Thing1, HostProfile::Gremlin],
            7,
            GridMonitorConfig::default(),
        );
        Arc::new(Mutex::new(GridState::new(grid)))
    }

    #[test]
    fn due_slots_follow_the_cadence_grid() {
        let state = shared_state();
        let mut d = TickDriver::virtual_time(Arc::clone(&state));
        assert_eq!(d.advance(35.0), 3, "35 s on a 10 s grid = 3 due slots");
        assert_eq!(d.advance(5.0), 1, "40 s total crosses the 4th boundary");
        assert_eq!(d.ticked(), 4);
        assert_eq!(state.lock().expect("state").grid().slots(), 4);
    }

    #[test]
    fn matches_manual_tick_loop_bit_for_bit() {
        // The driver-paced grid must be indistinguishable from the old
        // manual `tick(1)` loop — same slots, same revision.
        let a = shared_state();
        let mut d = TickDriver::virtual_time(Arc::clone(&a));
        for _ in 0..12 {
            d.advance(10.0);
        }
        let b = shared_state();
        for _ in 0..12 {
            b.lock().expect("state").tick(1);
        }
        let (ga, gb) = (a.lock().expect("state"), b.lock().expect("state"));
        assert_eq!(ga.grid().slots(), gb.grid().slots());
        assert_eq!(ga.grid().revision(), gb.grid().revision());
    }

    #[test]
    fn step_clock_quantizes_but_lands_on_the_same_slots() {
        let state = shared_state();
        let cadence = state.lock().expect("state").grid().cadence();
        let mut d = TickDriver::new(Arc::clone(&state), Box::new(StepClock::new(2.0)), cadence);
        d.advance_to(60.0);
        assert_eq!(d.ticked(), 6);
        assert_eq!(state.lock().expect("state").grid().slots(), 6);
    }
}
