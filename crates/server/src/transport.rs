//! Transport abstraction: the same request/response exchange over TCP
//! or entirely in memory.
//!
//! [`InMemoryTransport`] routes every call through the *exact* frame
//! codec the TCP path uses — encode, frame, decode, dispatch, encode,
//! frame, decode — just with a `Vec<u8>` standing in for the socket.
//! That makes "TCP and in-memory answers are byte-identical" a testable
//! property rather than a hope.

use crate::state::{Dispatch, GridState};
use nws_wire::{
    encode_request_frame, read_request, read_response, ErrorReply, ForecastReply, HorizonReply,
    HostRow, Request, Response, SeriesTailReply, SnapshotReply, StatsReply, WalChunkReply,
    WireError,
};
use std::fmt;
use std::sync::{Arc, Mutex};

/// Everything that can go wrong talking to a forecast server.
#[derive(Debug)]
pub enum ServeError {
    /// Encoding, decoding, or I/O failed.
    Wire(WireError),
    /// The server answered with a typed error frame.
    Remote(ErrorReply),
    /// The server answered with the wrong response variant.
    Unexpected(&'static str),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Wire(e) => write!(f, "wire error: {e}"),
            ServeError::Remote(e) => write!(f, "server error {:?}: {}", e.code, e.message),
            ServeError::Unexpected(what) => write!(f, "unexpected response variant: {what}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<WireError> for ServeError {
    fn from(e: WireError) -> Self {
        ServeError::Wire(e)
    }
}

/// A way to exchange one request for one response with a forecast
/// server. Implemented by [`NwsClient`](crate::NwsClient) (TCP) and
/// [`InMemoryTransport`] (no sockets).
pub trait Transport {
    /// Sends one request and returns the decoded response together
    /// with the raw response payload bytes, for byte-level comparisons
    /// across transports.
    fn call_raw(&mut self, req: &Request) -> Result<(Response, Vec<u8>), ServeError>;

    /// Sends one request and returns the decoded response.
    fn call(&mut self, req: &Request) -> Result<Response, ServeError> {
        self.call_raw(req).map(|(resp, _)| resp)
    }

    /// Typed forecast query.
    fn forecast(&mut self, host: &str) -> Result<ForecastReply, ServeError> {
        match self.call(&Request::Forecast {
            host: host.to_string(),
        })? {
            Response::Forecast(r) => Ok(r),
            Response::Error(e) => Err(ServeError::Remote(e)),
            _ => Err(ServeError::Unexpected("forecast")),
        }
    }

    /// Typed whole-grid snapshot query.
    fn snapshot(&mut self) -> Result<SnapshotReply, ServeError> {
        match self.call(&Request::Snapshot)? {
            Response::Snapshot(r) => Ok(r),
            Response::Error(e) => Err(ServeError::Remote(e)),
            _ => Err(ServeError::Unexpected("snapshot")),
        }
    }

    /// Typed best-host query.
    fn best_host(&mut self) -> Result<Option<HostRow>, ServeError> {
        match self.call(&Request::BestHost)? {
            Response::BestHost(r) => Ok(r),
            Response::Error(e) => Err(ServeError::Remote(e)),
            _ => Err(ServeError::Unexpected("best host")),
        }
    }

    /// Typed series-tail query.
    fn series_tail(&mut self, host: &str, n: u32) -> Result<SeriesTailReply, ServeError> {
        match self.call(&Request::SeriesTail {
            host: host.to_string(),
            n,
        })? {
            Response::SeriesTail(r) => Ok(r),
            Response::Error(e) => Err(ServeError::Remote(e)),
            _ => Err(ServeError::Unexpected("series tail")),
        }
    }

    /// Typed server-statistics query.
    fn stats(&mut self) -> Result<StatsReply, ServeError> {
        match self.call(&Request::Stats)? {
            Response::Stats(r) => Ok(r),
            Response::Error(e) => Err(ServeError::Remote(e)),
            _ => Err(ServeError::Unexpected("stats")),
        }
    }

    /// Typed journal-chunk query: the replication pull. `max` is
    /// clamped server-side to at most
    /// [`MAX_WAL_CHUNK`](nws_wire::MAX_WAL_CHUNK) bytes.
    fn wal_since(&mut self, offset: u64, max: u32) -> Result<WalChunkReply, ServeError> {
        match self.call(&Request::WalSince { offset, max })? {
            Response::WalChunk(r) => Ok(r),
            Response::Error(e) => Err(ServeError::Remote(e)),
            _ => Err(ServeError::Unexpected("wal chunk")),
        }
    }

    /// Typed multi-step forecast query. `k` is clamped server-side to
    /// at most [`MAX_HORIZON`](nws_wire::MAX_HORIZON) steps.
    fn forecast_horizon(&mut self, host: &str, k: u32) -> Result<HorizonReply, ServeError> {
        match self.call(&Request::ForecastHorizon {
            host: host.to_string(),
            k,
        })? {
            Response::ForecastHorizon(r) => Ok(r),
            Response::Error(e) => Err(ServeError::Remote(e)),
            _ => Err(ServeError::Unexpected("forecast horizon")),
        }
    }
}

/// The socket-free transport: frames requests into a buffer, decodes
/// them back, dispatches against any shared [`Dispatch`] state (the
/// primary [`GridState`] by default), and frames the response the same
/// way the TCP server does.
pub struct InMemoryTransport<D: Dispatch = GridState> {
    state: Arc<Mutex<D>>,
    /// Reusable "wire" for the request frame, mirroring the client's
    /// per-connection encode scratch.
    wire: Vec<u8>,
    /// Reusable buffer for the response frame, mirroring the server's.
    back: Vec<u8>,
}

impl<D: Dispatch> InMemoryTransport<D> {
    /// Wraps shared server state.
    pub fn new(state: Arc<Mutex<D>>) -> Self {
        Self {
            state,
            wire: Vec::new(),
            back: Vec::new(),
        }
    }

    /// The shared state (for advancing the grid mid-test).
    pub fn state(&self) -> &Arc<Mutex<D>> {
        &self.state
    }
}

impl<D: Dispatch> Transport for InMemoryTransport<D> {
    fn call_raw(&mut self, req: &Request) -> Result<(Response, Vec<u8>), ServeError> {
        // Client side: frame the request into the "wire".
        encode_request_frame(&mut self.wire, req);
        // Server side: decode, dispatch straight into the response
        // frame buffer — the same zero-copy path the socket servers
        // serve through.
        let decoded = read_request(&mut self.wire.as_slice())?;
        self.back.clear();
        self.state
            .lock()
            .expect("server state poisoned")
            .dispatch_frame(&decoded, &mut self.back);
        // Client side again: decode the response.
        Ok(read_response(&mut self.back.as_slice())?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nws_grid::{GridMonitor, GridMonitorConfig};
    use nws_sim::HostProfile;

    fn warm_transport() -> InMemoryTransport {
        let mut grid = GridMonitor::new(
            &[HostProfile::Thing1, HostProfile::Thing2],
            11,
            GridMonitorConfig::default(),
        );
        grid.run_steps(40);
        InMemoryTransport::new(Arc::new(Mutex::new(GridState::new(grid))))
    }

    #[test]
    fn typed_helpers_round_trip_through_the_codec() {
        let mut t = warm_transport();
        let fc = t.forecast("thing1").expect("warm host");
        assert!((0.0..=1.0).contains(&fc.value));
        let snap = t.snapshot().expect("snapshot");
        assert_eq!(snap.hosts.len(), 2);
        let best = t.best_host().expect("ok").expect("warm grid has a best");
        assert!(snap.hosts.iter().any(|h| h.host == best.host));
        let tail = t.series_tail("thing2", 8).expect("tail");
        assert_eq!(tail.points.len(), 8);
        let stats = t.stats().expect("stats");
        assert_eq!(stats.requests, 5);
        assert!(stats.cache_hits + stats.cache_misses > 0);
    }

    #[test]
    fn remote_errors_surface_as_serve_errors() {
        let mut t = warm_transport();
        match t.forecast("nonesuch") {
            Err(ServeError::Remote(e)) => {
                assert_eq!(e.code, nws_wire::ErrorCode::UnknownHost)
            }
            other => panic!("wrong result: {other:?}"),
        }
    }

    #[test]
    fn raw_payloads_are_deterministic_for_a_fixed_state() {
        let mut a = warm_transport();
        let mut b = warm_transport();
        for req in [
            Request::Forecast {
                host: "thing1".into(),
            },
            Request::Snapshot,
            Request::BestHost,
            Request::SeriesTail {
                host: "thing2".into(),
                n: 16,
            },
            Request::Stats,
        ] {
            let (_, pa) = a.call_raw(&req).expect("a");
            let (_, pb) = b.call_raw(&req).expect("b");
            assert_eq!(pa, pb, "payload bytes differ for {req:?}");
        }
    }
}
