//! The forecast-serving subsystem must inherit the repo's determinism
//! guarantees: responses are a pure function of the grid seed and the
//! request sequence — independent of transport (TCP vs in-memory) and
//! of the runtime thread count the grid was advanced with.

use nws::grid::GridMonitor;
use nws::server::{
    ClientConfig, GridState, InMemoryTransport, NwsClient, NwsServer, ServerConfig, Transport,
};
use nws::wire::Request;
use std::sync::{Arc, Mutex};

const SEED: u64 = 424242;

fn fixed_sequence(hosts: &[String]) -> Vec<Request> {
    let mut seq = vec![Request::Snapshot, Request::BestHost];
    for h in hosts {
        seq.push(Request::Forecast { host: h.clone() });
        seq.push(Request::SeriesTail {
            host: h.clone(),
            n: 24,
        });
        seq.push(Request::ForecastHorizon {
            host: h.clone(),
            k: 24,
        });
    }
    seq.push(Request::Batch(
        hosts
            .iter()
            .map(|h| Request::Forecast { host: h.clone() })
            .collect(),
    ));
    seq.push(Request::Stats);
    seq
}

/// Warms a six-host grid under the given runtime thread count and wraps
/// it in the socket-free transport.
fn warm_transport(threads: usize, steps: u64) -> InMemoryTransport {
    nws::runtime::set_threads(Some(threads));
    let mut grid = GridMonitor::ucsd(SEED);
    grid.run_steps(steps);
    InMemoryTransport::new(Arc::new(Mutex::new(GridState::new(grid))))
}

fn payload_trace(t: &mut InMemoryTransport, seq: &[Request]) -> Vec<Vec<u8>> {
    let mut trace = Vec::new();
    for req in seq {
        let (_, bytes) = t.call_raw(req).expect("dispatch");
        trace.push(bytes);
    }
    trace
}

#[test]
fn in_memory_responses_are_bit_identical_across_thread_counts() {
    let steps = 90;
    let mut one = warm_transport(1, steps);
    let mut four = warm_transport(4, steps);
    let hosts: Vec<String> = one
        .state()
        .lock()
        .expect("state")
        .grid()
        .snapshot()
        .hosts
        .iter()
        .map(|h| h.host.clone())
        .collect();
    let seq = fixed_sequence(&hosts);
    // Two passes with a grid tick in between, so the cached *and* the
    // recomputed paths are both compared.
    for _ in 0..2 {
        assert_eq!(
            payload_trace(&mut one, &seq),
            payload_trace(&mut four, &seq),
            "thread count leaked into served bytes"
        );
        one.state().lock().expect("state").tick(1);
        four.state().lock().expect("state").tick(1);
    }
    nws::runtime::set_threads(None);
}

#[test]
fn tcp_responses_match_the_in_memory_transport_byte_for_byte() {
    nws::runtime::set_threads(Some(1));
    let steps = 60;
    let mut grid_a = GridMonitor::ucsd(SEED);
    grid_a.run_steps(steps);
    let mut grid_b = GridMonitor::ucsd(SEED);
    grid_b.run_steps(steps);
    let hosts: Vec<String> = grid_a
        .snapshot()
        .hosts
        .iter()
        .map(|h| h.host.clone())
        .collect();

    let server =
        NwsServer::spawn(GridState::new(grid_a), ServerConfig::default()).expect("bind localhost");
    let mut tcp = NwsClient::connect(server.addr(), ClientConfig::default()).expect("connect");
    let mut mem = InMemoryTransport::new(Arc::new(Mutex::new(GridState::new(grid_b))));

    for req in fixed_sequence(&hosts) {
        let (_, tcp_bytes) = tcp.call_raw(&req).expect("tcp");
        let (_, mem_bytes) = mem.call_raw(&req).expect("in-memory");
        assert_eq!(tcp_bytes, mem_bytes, "transports diverged on {req:?}");
    }
    nws::runtime::set_threads(None);
}

#[test]
fn adversarial_personas_trip_defenses_without_wedging_healthy_clients() {
    use nws::loadgen::personas;
    use std::time::Duration;
    nws::runtime::set_threads(Some(1));
    let mut grid = GridMonitor::ucsd(SEED);
    grid.run_steps(60);
    // Tight deadlines so the defenses fire inside test time; room for
    // three personas plus a healthy client at once.
    let server = NwsServer::spawn(
        GridState::new(grid),
        ServerConfig {
            read_timeout: Duration::from_millis(250),
            request_deadline: Duration::from_millis(450),
            max_connections: 8,
            ..ServerConfig::default()
        },
    )
    .expect("bind localhost");
    let addr = server.addr();
    let patience = Duration::from_secs(5);
    let mut stats_frame = Vec::new();
    nws::wire::encode_request_frame(&mut stats_frame, &Request::Stats);

    let attackers = std::thread::spawn(move || {
        let partial = std::thread::spawn(move || personas::partial_frame(addr, patience));
        let oversize = std::thread::spawn(move || personas::oversize_claim(addr, patience));
        let slow = std::thread::spawn(move || {
            // 9 frame bytes at 75 ms apart: every byte beats the 250 ms
            // per-read timeout, but the whole frame takes 675 ms — well
            // past the 450 ms request deadline.
            personas::slow_writer(addr, &stats_frame, Duration::from_millis(75), patience)
        });
        [
            partial.join().expect("partial_frame"),
            oversize.join().expect("oversize_claim"),
            slow.join().expect("slow_writer"),
        ]
    });

    // A healthy client keeps exchanging while the attack runs; every
    // call must succeed with normal latency.
    let mut healthy = NwsClient::connect(
        addr,
        ClientConfig {
            retries: 0,
            ..ClientConfig::default()
        },
    )
    .expect("connect");
    for _ in 0..30 {
        healthy.stats().expect("healthy call during attack");
        std::thread::sleep(Duration::from_millis(20));
    }

    for report in attackers.join().expect("attacker thread") {
        let report = report.expect("persona io");
        assert!(
            report.tripped,
            "{} did not trip the server: {}",
            report.name, report.detail
        );
        assert!(
            report.elapsed < Duration::from_secs(2),
            "{} took {:?} — defense was not prompt",
            report.name,
            report.elapsed
        );
    }
    // And the server is still fully healthy afterwards.
    healthy.stats().expect("healthy call after attack");
    nws::runtime::set_threads(None);
}

#[test]
fn cache_hits_accumulate_between_ticks_and_reset_on_append() {
    let mut t = warm_transport(1, 60);
    let fc1 = t.forecast("thing1").expect("warm");
    let fc2 = t.forecast("thing1").expect("cached");
    assert_eq!(fc1, fc2);
    {
        let st = t.state().lock().expect("state");
        assert_eq!(st.cache().hits(), 1);
        assert_eq!(st.cache().invalidations(), 0);
    }
    t.state().lock().expect("state").tick(1);
    let fc3 = t.forecast("thing1").expect("recomputed");
    assert_eq!(fc3.observations, fc1.observations + 1);
    let st = t.state().lock().expect("state");
    assert_eq!(st.cache().invalidations(), 1);
    nws::runtime::set_threads(None);
}
