//! Full-scale (24 h / 1 week) reproduction assertions.
//!
//! These run the paper's actual protocol sizes and assert the calibrated
//! bands recorded in `EXPERIMENTS.md`. They take a few seconds each in
//! release mode and are `#[ignore]`d by default:
//!
//! ```sh
//! cargo test --release --test full_scale -- --ignored
//! ```

use nws::core::experiments::{
    short_dataset, table1_from, table3_from, table4_from, weekly_load_series, ExperimentConfig,
};

fn cfg() -> ExperimentConfig {
    ExperimentConfig::default()
}

#[test]
#[ignore = "full-scale run (~3 s release); use --ignored"]
fn table1_cells_land_in_calibrated_bands() {
    let t1 = table1_from(&short_dataset(&cfg()));
    // Pathologies, full strength.
    let con = t1.row("conundrum").expect("row");
    assert!(
        (0.28..0.45).contains(&con.load),
        "conundrum load {}",
        con.load
    );
    assert!(con.hybrid < 0.12, "conundrum hybrid {}", con.hybrid);
    let kongo = t1.row("kongo").expect("row");
    assert!(
        (0.30..0.50).contains(&kongo.hybrid),
        "kongo hybrid {}",
        kongo.hybrid
    );
    assert!(kongo.load < 0.10, "kongo load {}", kongo.load);
    // Normal hosts: load-average error in the paper's usable band.
    for host in ["thing2", "thing1", "beowulf", "gremlin"] {
        let r = t1.row(host).expect("row");
        assert!((0.02..0.15).contains(&r.load), "{host} load {}", r.load);
    }
    // gremlin (lightest) is the easiest host.
    let gremlin = t1.row("gremlin").expect("row");
    for host in ["thing2", "thing1"] {
        assert!(
            gremlin.load < t1.row(host).expect("row").load,
            "gremlin should beat {host}"
        );
    }
}

#[test]
#[ignore = "full-scale run (~3 s release); use --ignored"]
fn table3_one_step_errors_stay_below_six_percent() {
    let t3 = table3_from(&short_dataset(&cfg()));
    for r in &t3.rows {
        for v in r.values() {
            assert!(v < 0.06, "{}: {v}", r.host);
        }
    }
}

#[test]
#[ignore = "full-scale run (~6 s release); use --ignored"]
fn table4_hurst_and_variances_at_week_scale() {
    let c = cfg();
    let rows = table4_from(&short_dataset(&c), &weekly_load_series(&c));
    for r in &rows {
        assert!(
            (0.65..0.95).contains(&r.hurst),
            "{}: H = {}",
            r.host,
            r.hurst
        );
        // Variance drops under aggregation in every cell at full scale.
        for (orig, agg) in r.variances {
            assert!(agg <= orig + 1e-9, "{}: {orig} -> {agg}", r.host);
            // …but far more slowly than the 1/m of short-range data.
            assert!(
                agg > orig / 30.0,
                "{}: variance fell like independent data",
                r.host
            );
        }
    }
    // conundrum is the near-constant host of the paper.
    let con = rows.iter().find(|r| r.host == "conundrum").expect("row");
    assert!(
        con.variances[0].0 < 0.002,
        "conundrum var {}",
        con.variances[0].0
    );
}
