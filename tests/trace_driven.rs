//! Trace-driven simulation: replay preserves sensor-visible behaviour.

use nws::forecast::{evaluate_one_step, NwsForecaster};
use nws::sensors::LoadAvgSensor;
use nws::sim::{record_load_trace, Host, HostProfile, LoadTrace, TraceReplay};
use nws::timeseries::Series;

fn availability_series(host: &mut Host, samples: usize) -> Series {
    let mut sensor = LoadAvgSensor::new();
    let mut s = Series::new("avail");
    for _ in 0..samples {
        host.advance(10.0);
        s.push(host.now(), sensor.measure(host))
            .expect("time advances");
    }
    s
}

#[test]
fn replayed_trace_matches_source_statistics() {
    // Record one hour of run-queue samples from thing2.
    let mut source = HostProfile::Thing2.build(77);
    source.advance(1800.0);
    let trace = record_load_trace(&mut source, 5.0, 720);

    // Re-measure the identical realization over the recorded window.
    let mut source_again = HostProfile::Thing2.build(77);
    source_again.advance(2100.0);
    let src = availability_series(&mut source_again, 300);

    // Replay on a clean host, aligned to the same window.
    let mut sink = Host::new("sink", 1);
    sink.add_workload(Box::new(TraceReplay::new("t", trace)));
    sink.advance(300.0);
    let rep = availability_series(&mut sink, 300);

    let mean = |s: &Series| s.values().iter().sum::<f64>() / s.len() as f64;
    assert!(
        (mean(&src) - mean(&rep)).abs() < 0.08,
        "mean availability: source {} vs replay {}",
        mean(&src),
        mean(&rep)
    );
    let mae = |s: &Series| {
        let mut nws = NwsForecaster::nws_default();
        evaluate_one_step(&mut nws, s.values())
            .expect("long series")
            .mae
    };
    assert!(
        (mae(&src) - mae(&rep)).abs() < 0.03,
        "one-step MAE: source {} vs replay {}",
        mae(&src),
        mae(&rep)
    );
}

#[test]
fn trace_csv_survives_external_round_trip() {
    let mut host = HostProfile::Gremlin.build(3);
    host.advance(600.0);
    let trace = record_load_trace(&mut host, 5.0, 60);
    let text = trace.to_csv();
    let back = LoadTrace::from_csv(&text).expect("parses");
    assert_eq!(back, trace);
    // And the series view feeds straight into the analysis stack.
    let series = back.to_series("q");
    assert_eq!(series.len(), 60);
}
