//! Cross-crate pipeline tests: simulator → sensors → series → CSV →
//! forecaster, exercised through the public facade the way a downstream
//! user would.

use nws::core::monitor::{Monitor, MonitorConfig};
use nws::forecast::NwsForecaster;
use nws::sensors::{HybridSensor, LoadAvgSensor, TestProcess, VmstatSensor};
use nws::sim::{Host, HostProfile};
use nws::timeseries::csv::{parse_series, series_to_csv};
use nws::timeseries::Series;

#[test]
fn manual_monitoring_loop_with_public_api() {
    // A user wiring the pieces manually (without the Monitor driver).
    let mut host = HostProfile::Gremlin.build(31);
    host.advance(600.0);
    let mut load = LoadAvgSensor::new();
    let mut vmstat = VmstatSensor::new();
    let mut hybrid = HybridSensor::default();
    let mut series = Series::new("manual");
    for step in 0..60 {
        host.advance(10.0);
        let _ = load.measure(&host);
        let _ = vmstat.measure(&host);
        let value = if step % 6 == 0 {
            hybrid.measure_with_probe(&mut host)
        } else {
            hybrid.measure(&host)
        };
        series.push(host.now(), value).expect("time advances");
    }
    assert_eq!(series.len(), 60);
    assert!(hybrid.probes_run() >= 10);
    // Ground truth against the last readings.
    let mut tp = TestProcess::short();
    let truth = tp.run(&mut host);
    let last = series.last().expect("non-empty").value;
    assert!(
        (truth - last).abs() < 0.35,
        "hybrid {last} vs test process {truth}"
    );
}

#[test]
fn monitored_series_roundtrips_through_csv() {
    let mut host = HostProfile::Thing1.build(33);
    let out = Monitor::new(MonitorConfig::test_scale()).run(&mut host);
    let text = series_to_csv(&out.series.load);
    let back = parse_series(&text).expect("csv parses");
    assert_eq!(back.len(), out.series.load.len());
    for (a, b) in back.values().iter().zip(out.series.load.values()) {
        assert!((a - b).abs() < 1e-9);
    }
}

#[test]
fn forecaster_consumes_monitor_output_directly() {
    let mut host = HostProfile::Beowulf.build(35);
    let out = Monitor::new(MonitorConfig::test_scale()).run(&mut host);
    let mut nws = NwsForecaster::nws_default();
    let mut last_forecast = None;
    for point in out.series.vmstat.iter() {
        last_forecast = nws.update(point.value);
    }
    let f = last_forecast.expect("forecaster warm");
    assert!((0.0..=1.0).contains(&f.value));
    assert_eq!(nws.observations(), out.series.vmstat.len() as u64);
}

#[test]
fn two_hosts_can_be_driven_in_lockstep() {
    // A mini-grid: advance two hosts alternately and compare their state.
    let mut a = HostProfile::Thing2.build(37);
    let mut b = HostProfile::Gremlin.build(37);
    for _ in 0..100 {
        a.advance(10.0);
        b.advance(10.0);
    }
    assert_eq!(a.now(), b.now());
    // The busy workstation should be visibly busier than the light server.
    let la = a.load_average().five_minute();
    let lb = b.load_average().five_minute();
    assert!(la > lb, "thing2 load {la} vs gremlin load {lb}");
}

#[test]
fn ad_hoc_host_with_custom_workload() {
    use nws::sim::workload::{NiceSoaker, Workload};
    // Users can define their own hosts and attach stock workloads.
    let mut host = Host::new("custom-box", 39);
    let rng = host.fork_rng("bg");
    let soaker: Box<dyn Workload> = Box::new(NiceSoaker::new("bg", 120.0, 60.0, rng));
    host.add_workload(soaker);
    host.advance(1200.0);
    let avail = nws::sensors::availability_from_load(host.load_average().one_minute());
    assert!((0.0..=1.0).contains(&avail));
    // The soaker keeps the box partly busy on average.
    let acct = host.accounting();
    let busy = (acct.user + acct.sys) / acct.total();
    assert!(busy > 0.3, "busy = {busy}");
}
