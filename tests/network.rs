//! Cross-crate network integration: links + sensors + forecasting + the
//! combined weather service, exercised through the facade.

use nws::forecast::NwsForecaster;
use nws::grid::{Metric, WeatherService};
use nws::net::{BandwidthSensor, LatencySensor, Link, LinkConfig, LinkMonitor};

#[test]
fn manual_probe_loop_feeds_the_forecaster() {
    let mut link = Link::new("path", LinkConfig::wan_10mbit(), 21);
    link.advance(600.0);
    let mut bw_sensor = BandwidthSensor::nws_default();
    let mut lat_sensor = LatencySensor::new();
    let mut nws = NwsForecaster::nws_default();
    let capacity = link.config().capacity;
    for _ in 0..60 {
        let rtt = lat_sensor.measure(&link);
        assert!(rtt >= 2.0 * link.config().base_latency - 1e-12);
        let bw = bw_sensor.measure(&mut link);
        nws.update(bw / capacity);
        link.advance(120.0);
    }
    let f = nws.forecast().expect("warm");
    assert!((0.0..=1.0).contains(&f.value));
    // A half-utilized 10 Mbit/s path: forecasts should sit well inside
    // the open interval, not pinned at either extreme.
    assert!(f.value > 0.1 && f.value < 1.0, "forecast = {}", f.value);
}

#[test]
fn link_monitor_report_is_consistent_with_its_series() {
    let mut m = LinkMonitor::demo_grid(23);
    m.run_probes(40);
    for r in m.report() {
        let (bw, lat) = m.series(&r.name).expect("registered");
        let mean_bw = bw.values().iter().sum::<f64>() / bw.len() as f64;
        assert!((mean_bw - r.mean_bandwidth).abs() < 1e-9);
        let mean_lat = lat.values().iter().sum::<f64>() / lat.len() as f64;
        assert!((mean_lat - r.mean_latency).abs() < 1e-9);
    }
}

#[test]
fn weather_service_serves_both_halves() {
    let mut ws = WeatherService::ucsd(25);
    ws.advance(1800.0);
    // CPU half: every host has a live forecast.
    let snap = ws.cpu().snapshot();
    assert_eq!(snap.hosts.len(), 6);
    assert!(snap.hosts.iter().all(|h| h.forecast.is_some()));
    // Network half: memories filled, forecasts live and bounded.
    for link in ["ucsd->utk", "ucsd->uva", "ucsd-lan"] {
        let id = ws
            .net_registry()
            .lookup(link, Metric::NetworkBandwidth)
            .expect("registered");
        assert!(ws.net_memory().len(id) > 0, "{link}: no measurements");
        let f = ws.bandwidth_forecast(link).expect("warm");
        assert!(f.forecast.value > 0.0);
    }
    // The LAN forecast dominates the WAN forecasts.
    let lan = ws
        .bandwidth_forecast("ucsd-lan")
        .expect("warm")
        .forecast
        .value;
    let wan = ws
        .bandwidth_forecast("ucsd->utk")
        .expect("warm")
        .forecast
        .value;
    assert!(lan > wan, "lan {lan} vs wan {wan}");
}
