//! The epoll reactor front end must be indistinguishable from the
//! threaded server on the wire: byte-identical replies whatever the
//! event-loop count, pipelined replies in request order, replication
//! served from the same WAL bytes — while holding an order of
//! magnitude more connections than the threaded server's thread
//! budget, without spawning a thread or growing memory per connection.

use nws::grid::{GridMonitor, GridMonitorConfig, Wal};
use nws::server::{
    ClientConfig, GridState, InMemoryTransport, NwsClient, NwsServer, ReactorConfig, ReactorServer,
    ReplicaState, ServerConfig, Transport,
};
use nws::sim::HostProfile;
use nws::wire::{
    append_request_frame, encode_request_frame, parse_frame_header, Request, HEADER_LEN,
};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

const SEED: u64 = 424242;

/// Tests in this binary compare process-wide observables (thread
/// count, resident memory), so they must not overlap with each other's
/// servers. One lock serializes them; other test binaries are separate
/// processes and do not interfere.
static SERIAL: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

/// A warmed six-host grid with a journal attached, so `WalSince`
/// (the replication pull) is servable.
fn warm_grid(steps: u64) -> GridMonitor {
    let mut grid = GridMonitor::ucsd(SEED);
    grid.attach_journal(Wal::new());
    grid.run_steps(steps);
    grid
}

/// Every request kind, including the WAL-streaming pull.
fn fixed_sequence(hosts: &[String]) -> Vec<Request> {
    let mut seq = vec![Request::Snapshot, Request::BestHost];
    for h in hosts {
        seq.push(Request::Forecast { host: h.clone() });
        seq.push(Request::SeriesTail {
            host: h.clone(),
            n: 24,
        });
        seq.push(Request::ForecastHorizon {
            host: h.clone(),
            k: 24,
        });
    }
    seq.push(Request::ForecastHorizon {
        host: "zardoz".into(), // unknown host: typed error on every transport
        k: 8,
    });
    seq.push(Request::ForecastHorizon {
        host: hosts[0].clone(),
        k: 0, // degenerate horizon: BadRequest on every transport
    });
    seq.push(Request::Batch(
        hosts
            .iter()
            .map(|h| Request::Forecast { host: h.clone() })
            .collect(),
    ));
    seq.push(Request::WalSince {
        offset: 0,
        max: 4096,
    });
    seq.push(Request::WalSince {
        offset: 0,
        max: 1 << 16,
    });
    seq.push(Request::Stats);
    seq
}

fn payload_trace(t: &mut impl Transport, seq: &[Request]) -> Vec<Vec<u8>> {
    seq.iter()
        .map(|req| t.call_raw(req).expect("dispatch").1)
        .collect()
}

fn reactor_config(event_loops: usize) -> ReactorConfig {
    ReactorConfig {
        event_loops,
        ..ReactorConfig::default()
    }
}

#[test]
fn reactor_replies_match_threaded_and_in_memory_byte_for_byte() {
    let _guard = lock();
    let steps = 90;
    let hosts: Vec<String> = warm_grid(steps)
        .snapshot()
        .hosts
        .iter()
        .map(|h| h.host.clone())
        .collect();
    let seq = fixed_sequence(&hosts);

    let mut mem = InMemoryTransport::new(Arc::new(Mutex::new(GridState::new(warm_grid(steps)))));
    let expected = payload_trace(&mut mem, &seq);

    let threaded = NwsServer::spawn(GridState::new(warm_grid(steps)), ServerConfig::default())
        .expect("bind threaded");
    let mut tcp = NwsClient::connect(threaded.addr(), ClientConfig::default()).expect("connect");
    assert_eq!(
        payload_trace(&mut tcp, &seq),
        expected,
        "threaded server diverged from the in-memory transport"
    );

    for loops in [1usize, 4] {
        let reactor = ReactorServer::spawn(GridState::new(warm_grid(steps)), reactor_config(loops))
            .expect("bind reactor");
        let mut client =
            NwsClient::connect(reactor.addr(), ClientConfig::default()).expect("connect reactor");
        assert_eq!(
            payload_trace(&mut client, &seq),
            expected,
            "reactor with {loops} event loop(s) diverged from the in-memory transport"
        );
    }
}

#[test]
fn pipelined_replies_arrive_in_request_order() {
    let _guard = lock();
    let steps = 60;
    let hosts: Vec<String> = warm_grid(steps)
        .snapshot()
        .hosts
        .iter()
        .map(|h| h.host.clone())
        .collect();
    let seq = fixed_sequence(&hosts);
    let mut mem = InMemoryTransport::new(Arc::new(Mutex::new(GridState::new(warm_grid(steps)))));
    let expected = payload_trace(&mut mem, &seq);

    let reactor = ReactorServer::spawn(GridState::new(warm_grid(steps)), reactor_config(2))
        .expect("bind reactor");

    // Fire every request in one burst, no reads in between: a real
    // pipelining client. Replies must come back complete and in
    // request order.
    let mut sock = TcpStream::connect(reactor.addr()).expect("connect raw");
    sock.set_nodelay(true).expect("nodelay");
    sock.set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    let mut burst = Vec::new();
    for req in &seq {
        append_request_frame(&mut burst, req);
    }
    sock.write_all(&burst).expect("write pipelined burst");

    for (i, want) in expected.iter().enumerate() {
        let mut header = [0u8; HEADER_LEN];
        sock.read_exact(&mut header).expect("response header");
        let (_, len) = parse_frame_header(&header).expect("well-formed header");
        let mut payload = vec![0u8; len];
        sock.read_exact(&mut payload).expect("response payload");
        assert_eq!(
            payload, *want,
            "pipelined reply {i} out of order or corrupted"
        );
    }
}

#[test]
fn replica_syncs_over_the_reactor() {
    let _guard = lock();
    let reactor = ReactorServer::spawn(GridState::new(warm_grid(120)), reactor_config(1))
        .expect("bind reactor");
    let mut feed = NwsClient::connect(reactor.addr(), ClientConfig::default()).expect("connect");
    let host_refs: Vec<&str> = HostProfile::all().iter().map(|p| p.name()).collect();
    let mut replica = ReplicaState::new(&host_refs, GridMonitorConfig::default());
    replica.sync(&mut feed).expect("replicate over the reactor");
    assert!(replica.synced(), "replica caught up through the reactor");
}

#[test]
fn personas_trip_the_reactor_defenses_without_hurting_healthy_clients() {
    use nws::loadgen::personas;
    let _guard = lock();
    let reactor = ReactorServer::spawn(
        GridState::new(warm_grid(60)),
        ReactorConfig {
            server: ServerConfig {
                read_timeout: Duration::from_millis(250),
                request_deadline: Duration::from_millis(450),
                max_connections: 8,
                ..ServerConfig::default()
            },
            ..reactor_config(2)
        },
    )
    .expect("bind reactor");
    let addr = reactor.addr();
    let patience = Duration::from_secs(5);
    let mut stats_frame = Vec::new();
    encode_request_frame(&mut stats_frame, &Request::Stats);

    let attackers = std::thread::spawn(move || {
        let partial = std::thread::spawn(move || personas::partial_frame(addr, patience));
        let oversize = std::thread::spawn(move || personas::oversize_claim(addr, patience));
        let slow = std::thread::spawn(move || {
            // 9 frame bytes at 75 ms apart: each byte beats the idle
            // cut, but the whole frame blows the 450 ms deadline.
            personas::slow_writer(addr, &stats_frame, Duration::from_millis(75), patience)
        });
        [
            partial.join().expect("partial_frame"),
            oversize.join().expect("oversize_claim"),
            slow.join().expect("slow_writer"),
        ]
    });

    let mut healthy = NwsClient::connect(
        addr,
        ClientConfig {
            retries: 0,
            ..ClientConfig::default()
        },
    )
    .expect("connect healthy");
    for _ in 0..30 {
        healthy.stats().expect("healthy call during attack");
        std::thread::sleep(Duration::from_millis(20));
    }

    for report in attackers.join().expect("attacker thread") {
        let report = report.expect("persona io");
        assert!(
            report.tripped,
            "{} did not trip the reactor: {}",
            report.name, report.detail
        );
        assert!(
            report.elapsed < Duration::from_secs(2),
            "{} took {:?} — defense was not prompt",
            report.name,
            report.elapsed
        );
    }
    healthy.stats().expect("healthy call after attack");
}

fn proc_status_field(field: &str) -> u64 {
    let status = std::fs::read_to_string("/proc/self/status").expect("read /proc/self/status");
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix(field) {
            let digits: String = rest.chars().filter(|c| c.is_ascii_digit()).collect();
            return digits.parse().expect("numeric /proc field");
        }
    }
    panic!("{field} not in /proc/self/status");
}

#[test]
fn a_thousand_idle_connections_cost_no_threads_and_bounded_memory() {
    let _guard = lock();
    const IDLE: usize = 1000;
    let reactor = ReactorServer::spawn(
        GridState::new(warm_grid(60)),
        ReactorConfig {
            server: ServerConfig {
                max_connections: IDLE + 32,
                // The held connections sit idle for the whole test;
                // keep the idle cut far away.
                read_timeout: Duration::from_secs(120),
                request_deadline: Duration::from_secs(240),
                ..ServerConfig::default()
            },
            ..reactor_config(2)
        },
    )
    .expect("bind reactor");
    let addr = reactor.addr();

    // Baseline once the server's own threads (listener + event loops)
    // are up.
    let threads_before = proc_status_field("Threads:");
    let rss_before_kb = proc_status_field("VmRSS:");

    let held: Vec<TcpStream> = (0..IDLE)
        .map(|i| {
            TcpStream::connect(addr).unwrap_or_else(|e| panic!("idle connect #{i} failed: {e}"))
        })
        .collect();
    // Registration is asynchronous (accept -> inbox -> event loop);
    // wait for the slab to report every connection.
    let deadline = Instant::now() + Duration::from_secs(10);
    while reactor.active_connections() < IDLE {
        assert!(
            Instant::now() < deadline,
            "only {} of {IDLE} idle connections registered",
            reactor.active_connections()
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    let threads_after = proc_status_field("Threads:");
    let rss_after_kb = proc_status_field("VmRSS:");
    assert_eq!(
        threads_after, threads_before,
        "idle connections must not spawn threads"
    );
    let grown_kb = rss_after_kb.saturating_sub(rss_before_kb);
    assert!(
        grown_kb < 64 * 1024,
        "{IDLE} idle connections grew RSS by {grown_kb} KiB"
    );

    // The server still answers promptly with the fleet connected.
    let mut client = NwsClient::connect(addr, ClientConfig::default()).expect("connect client");
    client.stats().expect("stats with 1000 idle connections");
    assert!(reactor.active_connections() > IDLE);
    drop(held);
}
