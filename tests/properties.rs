//! Property-based tests (proptest) on the cross-crate invariants the
//! reproduction relies on.

use nws::forecast::{
    evaluate_one_step, ExpSmoothing, Forecaster, LastValue, NwsForecaster, RunningMean,
    SlidingMean, SlidingMedian, TrimmedMean,
};
use nws::sensors::{availability_from_load, availability_from_vmstat, VmstatReading};
use nws::stats::{autocorrelation, rs_statistic};
use nws::timeseries::{aggregate_mean, summarize, Series, SlidingWindow};
use proptest::prelude::*;

fn availability_series() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0f64..=1.0, 2..200)
}

proptest! {
    #[test]
    fn forecasts_stay_inside_observed_hull(values in availability_series()) {
        // Every panel member is an average/selection of past values, so a
        // forecast can never leave the [min, max] of the history.
        let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mut members: Vec<Box<dyn Forecaster>> = vec![
            Box::new(LastValue::new()),
            Box::new(RunningMean::new()),
            Box::new(SlidingMean::new(7)),
            Box::new(SlidingMedian::new(7)),
            Box::new(TrimmedMean::new(7, 0.2)),
            Box::new(ExpSmoothing::new(0.3)),
        ];
        for &v in &values {
            for m in members.iter_mut() {
                m.observe(v);
                if let Some(p) = m.predict() {
                    prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9,
                        "{} predicted {p} outside [{lo}, {hi}]", m.name());
                }
            }
        }
    }

    #[test]
    fn one_step_error_metrics_are_coherent(values in availability_series()) {
        // The panel's only non-interpolating member is the stochastic
        // gradient AR(1); its coefficients are clamped to [-2, 2], so for
        // inputs in [0, 1] a prediction lies in [-4, 4] and any single
        // error is at most 5. The aggregate metrics must also obey
        // MAE <= RMSE <= max error.
        let mut nws = NwsForecaster::nws_default();
        if let Some(report) = evaluate_one_step(&mut nws, &values) {
            prop_assert!(report.mae.is_finite() && report.rmse.is_finite());
            prop_assert!(report.max_abs <= 5.0 + 1e-9);
            prop_assert!(report.rmse >= report.mae - 1e-12);
            prop_assert!(report.max_abs >= report.rmse - 1e-12);
            prop_assert_eq!(report.n, values.len() - 1);
        }
    }

    #[test]
    fn aggregation_preserves_grand_mean(values in prop::collection::vec(0.0f64..=1.0, 30..300), m in 1usize..10) {
        // Over whole blocks, the mean of block means equals the mean of the
        // covered prefix.
        let whole = values.len() / m * m;
        if whole == 0 { return Ok(()); }
        let agg = aggregate_mean(&values[..whole], m);
        let mean_direct = summarize(&values[..whole]).expect("non-empty").mean;
        let mean_agg = summarize(&agg).expect("non-empty").mean;
        prop_assert!((mean_direct - mean_agg).abs() < 1e-9);
    }

    #[test]
    fn aggregation_never_increases_range(values in prop::collection::vec(0.0f64..=1.0, 30..300), m in 2usize..10) {
        let agg = aggregate_mean(&values, m);
        if agg.is_empty() { return Ok(()); }
        let s_orig = summarize(&values).expect("non-empty");
        let s_agg = summarize(&agg).expect("non-empty");
        prop_assert!(s_agg.min >= s_orig.min - 1e-12);
        prop_assert!(s_agg.max <= s_orig.max + 1e-12);
        // Block means cannot have larger variance than the original values.
        prop_assert!(s_agg.variance <= s_orig.variance + 1e-12);
    }

    #[test]
    fn sliding_window_sum_matches_exact(values in prop::collection::vec(-1e3f64..1e3, 1..300), cap in 1usize..20) {
        let mut w = SlidingWindow::new(cap);
        for &v in &values {
            w.push(v);
            let exact: f64 = w.iter().sum();
            prop_assert!((w.sum() - exact).abs() < 1e-6);
            prop_assert_eq!(w.len(), w.iter().count());
        }
    }

    #[test]
    fn rs_statistic_is_shift_and_scale_invariant(
        values in prop::collection::vec(0.0f64..1.0, 8..64),
        shift in -10.0f64..10.0,
        scale in 0.1f64..10.0,
    ) {
        let transformed: Vec<f64> = values.iter().map(|v| v * scale + shift).collect();
        match (rs_statistic(&values), rs_statistic(&transformed)) {
            (Some(a), Some(b)) => prop_assert!((a - b).abs() < 1e-6 * a.max(1.0)),
            (None, None) => {}
            (a, b) => prop_assert!(false, "invariance broken: {a:?} vs {b:?}"),
        }
    }

    #[test]
    fn autocorrelation_is_bounded(values in prop::collection::vec(0.0f64..1.0, 4..128)) {
        if let Some(rho) = autocorrelation(&values, values.len() / 2) {
            prop_assert!((rho[0] - 1.0).abs() < 1e-12);
            for &r in &rho {
                prop_assert!(r.abs() <= 1.0 + 1e-9);
            }
        }
    }

    #[test]
    fn eq1_and_eq2_stay_in_unit_interval(
        load in 0.0f64..50.0,
        idle in 0.0f64..1.0,
        user in 0.0f64..1.0,
        sys in 0.0f64..1.0,
        rp in 0.0f64..20.0,
    ) {
        let a = availability_from_load(load);
        prop_assert!((0.0..=1.0).contains(&a));
        let v = availability_from_vmstat(&VmstatReading { idle, user, sys, smoothed_rp: rp });
        prop_assert!((0.0..=1.0).contains(&v));
    }

    #[test]
    fn series_monotone_push_invariant(times in prop::collection::vec(0.001f64..1e6, 1..100)) {
        // Pushing cumulative times always succeeds; the series length
        // matches, and lookups return the right neighbours.
        let mut acc = 0.0;
        let mut series = Series::new("p");
        for (i, dt) in times.iter().enumerate() {
            acc += dt;
            series.push(acc, i as f64).expect("strictly increasing");
        }
        prop_assert_eq!(series.len(), times.len());
        let last = series.last().expect("non-empty");
        prop_assert_eq!(series.at_or_before(acc + 1.0).expect("exists"), last);
        prop_assert!(series.at_or_before(series.times()[0] - 1.0).is_none());
    }
}
