//! Shared fixtures for the integration suites: the FNV fingerprint
//! accumulator, the seeded reference scenario, and the golden
//! fingerprints recorded from the pre-refactor pipeline (commit
//! d1793fb). `tests/engine.rs` pins engine configurations to these
//! bits; `tests/durability.rs` pins crash recovery and replication to
//! the same run.
#![allow(dead_code)]

use nws::faults::{FaultPlan, FaultRates};
use nws::grid::{GridMonitor, GridMonitorConfig, Metric};
use nws::runtime::StepClock;
use nws::server::{GridState, InMemoryTransport, Transport};
use nws::sim::HostProfile;
use nws::wire::Request;
use std::sync::{Arc, Mutex};

/// FNV-1a over an explicit byte stream: the fingerprint accumulator.
pub struct Fnv(pub u64);

impl Fnv {
    pub fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    pub fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    pub fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    pub fn str(&mut self, s: &str) {
        self.bytes(s.as_bytes());
    }
}

pub const METRICS: [Metric; 4] = [
    Metric::CpuAvailabilityLoad,
    Metric::CpuAvailabilityVmstat,
    Metric::CpuAvailabilityHybrid,
    Metric::LoadAverage,
];

pub const SEED: u64 = 4242;
pub const STEPS: u64 = 120;

/// The pre-refactor pipeline's fingerprints, recorded at commit d1793fb
/// (lockstep `for host { measure; publish }` loops, manual tick
/// interleaving, no engine). Every engine configuration must keep
/// reproducing these exact bits.
pub const GOLDEN_CLEAN_STATE: u64 = 0xaacf_b64a_5e5e_e354;
pub const GOLDEN_CLEAN_SERVED: u64 = 0x8ce4_4a79_32c2_65e2;
pub const GOLDEN_FAULT_STATE: u64 = 0xdbaa_fa67_5dbc_a4ac;
pub const GOLDEN_FAULT_SERVED: u64 = 0x3948_2553_fb2c_3ced;
pub const GOLDEN_WEATHER: u64 = 0x139c_5275_9273_0875;

/// Hashes every retained measurement bit, gap timestamp, drop count, and
/// a forecast-CSV line per series, plus the fleet fault stats.
pub fn grid_fingerprint(gm: &GridMonitor) -> u64 {
    let mut h = Fnv::new();
    let now = gm.now();
    h.f64(now);
    for p in HostProfile::all() {
        for metric in METRICS {
            let id = gm.registry().lookup(p.name(), metric).expect("registered");
            h.u64(gm.memory().len(id) as u64);
            gm.memory().with_series(id, |times, values| {
                for (&t, &v) in times.iter().zip(values) {
                    h.f64(t);
                    h.f64(v);
                }
            });
            for g in gm.memory().gaps(id) {
                h.f64(g);
            }
            h.u64(gm.memory().dropped(id));
            // One forecast-CSV line per series, hashed bit-for-bit.
            let line = match gm.forecasts().forecast_at(id, now) {
                None => format!("{},{:?},cold\n", p.name(), metric),
                Some(a) => {
                    let iv = a.interval.as_ref().map_or_else(
                        || "-".to_string(),
                        |iv| format!("{:016x}:{:016x}", iv.lo.to_bits(), iv.hi.to_bits()),
                    );
                    format!(
                        "{},{:?},{:016x},{},{},{:016x},{:016x},{}\n",
                        p.name(),
                        metric,
                        a.forecast.value.to_bits(),
                        a.forecast.method,
                        a.observations,
                        a.staleness.to_bits(),
                        a.confidence.to_bits(),
                        iv
                    )
                }
            };
            h.str(&line);
        }
    }
    let st = gm.fault_stats();
    for v in [
        st.slots,
        st.delivered,
        st.gaps,
        st.outage_slots,
        st.reboots,
        st.probe_attempts_failed,
        st.probes_abandoned,
        st.fallback_cross,
        st.delayed,
        st.late_delivered,
        st.late_dropped,
    ] {
        h.u64(v);
    }
    h.0
}

/// The fixed request script served against every scenario.
pub fn request_script() -> Vec<Request> {
    let hosts: Vec<String> = HostProfile::all()
        .iter()
        .map(|p| p.name().to_string())
        .collect();
    let mut seq = vec![Request::Snapshot, Request::BestHost];
    for h in &hosts {
        seq.push(Request::Forecast { host: h.clone() });
        seq.push(Request::SeriesTail {
            host: h.clone(),
            n: 24,
        });
    }
    seq.push(Request::Batch(
        hosts
            .iter()
            .map(|h| Request::Forecast { host: h.clone() })
            .collect(),
    ));
    seq.push(Request::Stats);
    seq
}

/// Hashes the exact wire bytes the serving layer emits for the script.
pub fn served_fingerprint(gm: GridMonitor) -> u64 {
    let mut t = InMemoryTransport::new(Arc::new(Mutex::new(GridState::new(gm))));
    let mut h = Fnv::new();
    for req in request_script() {
        let (_, bytes) = t.call_raw(&req).expect("dispatch");
        h.u64(bytes.len() as u64);
        h.bytes(&bytes);
    }
    h.0
}

/// How one scenario paces and batches the engine.
#[derive(Clone, Copy, Debug)]
pub struct EngineSetup {
    pub threads: usize,
    pub batch_slots: usize,
    /// `None` = virtual clock; `Some(q)` = a [`StepClock`] with quantum
    /// `q` seconds.
    pub step_quantum: Option<f64>,
}

impl EngineSetup {
    pub const REFERENCE: EngineSetup = EngineSetup {
        threads: 1,
        batch_slots: 64,
        step_quantum: None,
    };
}

pub fn build_grid(faulted: bool, setup: EngineSetup) -> GridMonitor {
    let plan = if faulted {
        FaultPlan::seeded(17, FaultRates::uniform(0.12))
    } else {
        FaultPlan::none()
    };
    let config = GridMonitorConfig {
        batch_slots: setup.batch_slots,
        ..GridMonitorConfig::default()
    };
    match setup.step_quantum {
        None => GridMonitor::with_faults(&HostProfile::all(), SEED, config, plan),
        Some(q) => GridMonitor::with_clock(
            &HostProfile::all(),
            SEED,
            config,
            plan,
            Box::new(StepClock::new(q)),
        ),
    }
}

/// Runs one scenario under a setup: (state fingerprint, served bytes
/// fingerprint).
pub fn scenario(setup: EngineSetup, faulted: bool) -> (u64, u64) {
    nws::runtime::set_threads(Some(setup.threads));
    let mut gm = build_grid(faulted, setup);
    gm.run_steps(STEPS);
    nws::runtime::set_threads(None);
    let state = grid_fingerprint(&gm);
    (state, served_fingerprint(gm))
}

/// The full equivalence matrix: threads × batch window × clock, clean and
/// faulted.
pub fn setups() -> Vec<EngineSetup> {
    let mut out = Vec::new();
    for threads in [1, 4] {
        for batch_slots in [1, 16, 64] {
            for step_quantum in [None, Some(10.0)] {
                out.push(EngineSetup {
                    threads,
                    batch_slots,
                    step_quantum,
                });
            }
        }
    }
    out
}
