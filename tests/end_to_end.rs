//! End-to-end reproduction checks: the paper's qualitative claims must hold
//! on freshly generated (quick-scale) datasets, across every crate in the
//! workspace at once.

use nws::core::experiments::{
    short_dataset, table1_from, table2_from, table3_from, table4_from, table5_from,
    weekly_load_series, ExperimentConfig,
};

fn cfg() -> ExperimentConfig {
    ExperimentConfig::quick()
}

#[test]
fn headline_one_step_prediction_beats_measurement() {
    // "The greatest source of error … comes from the process of measuring
    // the availability of the CPU and not from predicting what the next
    // measurement value will be."
    let data = short_dataset(&cfg());
    let t1 = table1_from(&data);
    let t3 = table3_from(&data);
    let mut prediction_wins = 0;
    let mut cells = 0;
    for (r1, r3) in t1.rows.iter().zip(&t3.rows) {
        for (m_err, p_err) in r1.values().iter().zip(r3.values()) {
            cells += 1;
            if p_err <= *m_err {
                prediction_wins += 1;
            }
        }
    }
    assert!(
        prediction_wins >= cells - 2,
        "prediction error should be below measurement error almost everywhere \
         ({prediction_wins}/{cells})"
    );
}

#[test]
fn conundrum_pathology() {
    // nice +19 background load: passive methods fooled, hybrid accurate.
    let t1 = table1_from(&short_dataset(&cfg()));
    let row = t1.row("conundrum").expect("conundrum monitored");
    assert!(row.load > 0.2, "load err = {}", row.load);
    assert!(row.vmstat > 0.2, "vmstat err = {}", row.vmstat);
    assert!(row.hybrid < 0.15, "hybrid err = {}", row.hybrid);
    assert!(row.load > 2.0 * row.hybrid);
}

#[test]
fn kongo_pathology() {
    // Long-running full-priority job: probe (and hence hybrid) fooled.
    let t1 = table1_from(&short_dataset(&cfg()));
    let row = t1.row("kongo").expect("kongo monitored");
    assert!(row.hybrid > 0.3, "hybrid err = {}", row.hybrid);
    assert!(row.load < 0.15, "load err = {}", row.load);
    assert!(row.hybrid > 2.0 * row.load);
}

#[test]
fn normal_hosts_are_schedulable() {
    // "An error of 10% or less … is considered useful for scheduling."
    // The well-behaved sensor/host combinations must sit in that band
    // (quick scale is noisy, so allow some slack above the paper's 10%).
    let t1 = table1_from(&short_dataset(&cfg()));
    for host in ["thing2", "thing1", "beowulf", "gremlin"] {
        let row = t1.row(host).expect("host monitored");
        assert!(row.load < 0.2, "{host} load err = {}", row.load);
    }
    let gremlin = t1.row("gremlin").unwrap();
    assert!(
        gremlin.load < 0.12,
        "gremlin should be easy: {}",
        gremlin.load
    );
}

#[test]
fn forecasting_error_tracks_measurement_error() {
    // Table 2 ≈ Table 1: "measurement and forecasting accuracy are
    // approximately the same".
    let data = short_dataset(&cfg());
    let t1 = table1_from(&data);
    let t2 = table2_from(&data);
    for (r1, r2) in t1.rows.iter().zip(&t2.rows) {
        for (m, f) in r1.values().iter().zip(r2.values()) {
            assert!(
                (m - f).abs() < 0.15,
                "{}: measurement {m} vs true-forecast {f}",
                r1.host
            );
        }
    }
}

#[test]
fn aggregation_reduces_variance_for_most_series() {
    let data = short_dataset(&cfg());
    let weekly = weekly_load_series(&cfg());
    let rows = table4_from(&data, &weekly);
    let mut drops = 0;
    let mut total = 0;
    for r in &rows {
        for (orig, agg) in r.variances {
            total += 1;
            if agg <= orig {
                drops += 1;
            }
        }
    }
    assert!(drops * 3 >= total * 2, "only {drops}/{total} cells dropped");
}

#[test]
fn hurst_indicates_long_range_dependence() {
    let data = short_dataset(&cfg());
    let weekly = weekly_load_series(&cfg());
    for r in table4_from(&data, &weekly) {
        assert!(
            r.hurst > 0.5 && r.hurst < 1.05,
            "{}: H = {} outside the self-similar band",
            r.host,
            r.hurst
        );
    }
}

#[test]
fn aggregated_prediction_errors_stay_small() {
    // Table 5: 5-minute aggregated one-step errors stay small. At quick
    // scale the aggregated series has only ~12 points, so the bound is
    // loose; the full-scale repro lands in the paper's single-digit band.
    let t5 = table5_from(&short_dataset(&cfg()));
    for r in &t5.rows {
        for v in r.values() {
            assert!(v < 0.25, "{}: aggregated error {v}", r.host);
        }
    }
}
