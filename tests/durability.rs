//! Crash-recovery proofs and replication byte-identity.
//!
//! The durability layer must be invisible while the process lives and
//! lossless when it dies: attaching a journal changes no golden bit;
//! killing the process at any seeded point of the run — including mid
//! write, leaving a torn final record — and replaying the journal
//! (optionally on top of a snapshot) restores the `Memory` to the exact
//! fingerprint the uninterrupted run produces, at any thread count. A
//! read replica fed the same journal over the wire protocol matches the
//! primary byte-for-byte at every revision, and a failover client keeps
//! serving through a primary crash.

mod common;

use common::*;
use nws::faults::{CrashKind, CrashPlan};
use nws::grid::wal::replay;
use nws::grid::{recover_memory, GridMonitor, GridMonitorConfig, Memory, RecoverySource, Wal};
use nws::server::{
    ClientConfig, FailoverClient, GridState, InMemoryTransport, NwsClient, NwsServer, ReplicaState,
    ServerConfig, Transport,
};
use nws::sim::HostProfile;
use nws::wire::{Request, Response};
use std::sync::{Arc, Mutex};

/// Memory fingerprints of the reference scenario with a journal
/// attached, recorded once via `print_durability_goldens` below. Every
/// recovery path must land exactly here.
const GOLDEN_CLEAN_MEMORY: u64 = 0x9bd6_a65f_2100_4437;
const GOLDEN_FAULT_MEMORY: u64 = 0x089f_7e95_7a36_f5c3;

/// The reference scenario with a journal attached from genesis.
fn journaled_run(faulted: bool, threads: usize) -> (Vec<u8>, GridMonitor) {
    nws::runtime::set_threads(Some(threads));
    let mut gm = build_grid(faulted, EngineSetup::REFERENCE);
    gm.attach_journal(Wal::new());
    gm.run_steps(STEPS);
    nws::runtime::set_threads(None);
    let wal = gm.journal().expect("attached").bytes().to_vec();
    (wal, gm)
}

fn golden_memory(faulted: bool) -> u64 {
    if faulted {
        GOLDEN_FAULT_MEMORY
    } else {
        GOLDEN_CLEAN_MEMORY
    }
}

/// Recovers from a journal prefix, then applies the rest of the golden
/// journal — the deterministic restart re-run — and returns the final
/// memory.
fn recover_and_resume(wal: &[u8], cut: usize) -> Memory {
    let config = GridMonitorConfig::default().memory;
    let (mut mem, report) = recover_memory(config, None, &wal[..cut], |_| {});
    assert!(
        report.valid_wal_len <= cut,
        "recovery never reads past the kill point"
    );
    let resumed = replay(wal, report.valid_wal_len, |rec| mem.apply(rec));
    assert!(resumed.error.is_none(), "golden journal replays cleanly");
    assert_eq!(resumed.end, wal.len());
    mem
}

#[test]
fn journaling_is_invisible_to_the_goldens() {
    for threads in [1, 4] {
        let (wal, gm) = journaled_run(false, threads);
        assert!(!wal.is_empty());
        assert_eq!(
            grid_fingerprint(&gm),
            GOLDEN_CLEAN_STATE,
            "threads={threads}"
        );
        assert_eq!(
            served_fingerprint(gm),
            GOLDEN_CLEAN_SERVED,
            "threads={threads}"
        );
        let (_, gm) = journaled_run(true, threads);
        assert_eq!(
            grid_fingerprint(&gm),
            GOLDEN_FAULT_STATE,
            "threads={threads}"
        );
    }
}

#[test]
fn wal_stream_is_identical_across_threads() {
    for faulted in [false, true] {
        let (reference, gm) = journaled_run(faulted, 1);
        assert_eq!(gm.memory().fingerprint(), golden_memory(faulted));
        for threads in [2, 4] {
            let (wal, gm) = journaled_run(faulted, threads);
            assert_eq!(wal, reference, "faulted={faulted} threads={threads}");
            assert_eq!(gm.memory().fingerprint(), golden_memory(faulted));
        }
    }
}

#[test]
fn kill_and_replay_reproduces_the_memory() {
    for faulted in [false, true] {
        for threads in [1, 4] {
            let (wal, gm) = journaled_run(faulted, threads);
            let golden = gm.memory().fingerprint();
            assert_eq!(golden, golden_memory(faulted));
            for fraction in [0.25, 0.50, 0.99] {
                let cut = ((wal.len() as f64) * fraction) as usize;
                let mem = recover_and_resume(&wal, cut);
                assert_eq!(
                    mem.fingerprint(),
                    golden,
                    "kill at {fraction} of the journal, faulted={faulted} threads={threads}"
                );
            }
        }
    }
}

#[test]
fn seeded_crash_plan_events_all_recover() {
    let (wal, gm) = journaled_run(true, 1);
    let golden = gm.memory().fingerprint();
    let snap = gm.memory().snapshot_bytes();
    let mut plan = CrashPlan::seeded(2026);
    let mut torn_seen = false;
    for round in 0..12 {
        let event = plan.next_event();
        let cut = event.cut_at(wal.len());
        match event.kind {
            CrashKind::CleanKill | CrashKind::TornRecord => {
                // Either way the prefix may end mid-record; recovery
                // keeps the valid records and the resume re-run lands
                // on the golden state.
                let mem = recover_and_resume(&wal, cut);
                assert_eq!(mem.fingerprint(), golden, "round {round}: {event:?}");
                torn_seen |= replay(&wal[..cut], 0, |_| {}).error.is_some();
            }
            CrashKind::TruncatedSnapshot => {
                // A half-written snapshot is rejected and recovery
                // falls back to genesis replay of the full journal.
                let cut = cut.min(snap.len().saturating_sub(1));
                let config = GridMonitorConfig::default().memory;
                let (mem, report) = recover_memory(config, Some(&snap[..cut]), &wal, |_| {});
                assert_eq!(report.source, RecoverySource::Genesis);
                assert!(report.snapshot_error.is_some(), "truncation is typed");
                assert_eq!(mem.fingerprint(), golden, "round {round}: {event:?}");
            }
        }
    }
    assert!(torn_seen, "at least one seeded kill landed mid-record");
}

#[test]
fn snapshot_plus_wal_suffix_recovers_bit_identically() {
    // Capture a mid-run snapshot, then keep running.
    nws::runtime::set_threads(Some(1));
    let mut gm = build_grid(true, EngineSetup::REFERENCE);
    gm.attach_journal(Wal::new());
    gm.run_steps(60);
    let snap = gm.memory().snapshot_bytes();
    gm.run_steps(STEPS - 60);
    nws::runtime::set_threads(None);
    let wal = gm.journal().expect("attached").bytes().to_vec();
    let golden = gm.memory().fingerprint();
    assert_eq!(golden, GOLDEN_FAULT_MEMORY);

    let config = GridMonitorConfig::default().memory;
    let (mem, report) = recover_memory(config, Some(&snap), &wal, |_| {});
    match report.source {
        RecoverySource::Snapshot { wal_offset } => {
            assert!(wal_offset > 0 && wal_offset < wal.len());
            assert!(
                (report.replayed as usize) < wal.len() / 17,
                "snapshot skipped most of the journal"
            );
        }
        RecoverySource::Genesis => panic!("snapshot was rejected: {report:?}"),
    }
    assert_eq!(mem.fingerprint(), golden);
}

#[test]
fn replica_matches_the_primary_at_every_revision() {
    let hosts: Vec<&str> = HostProfile::all().iter().map(|p| p.name()).collect();
    for threads in [1, 4] {
        nws::runtime::set_threads(Some(threads));
        let mut gm = build_grid(true, EngineSetup::REFERENCE);
        gm.attach_journal(Wal::new());
        let state = Arc::new(Mutex::new(GridState::new(gm)));
        let mut primary = InMemoryTransport::new(Arc::clone(&state));
        let mut replica = ReplicaState::new(&hosts, GridMonitorConfig::default());
        for step in 0..STEPS {
            state.lock().unwrap().tick(1);
            replica.sync(&mut primary).expect("sync");
            let st = state.lock().unwrap();
            assert_eq!(
                replica.memory().fingerprint(),
                st.grid().memory().fingerprint(),
                "threads={threads} step={step}"
            );
            assert_eq!(
                replica.forecasts().global_revision(),
                st.grid().forecasts().global_revision(),
                "threads={threads} step={step}"
            );
        }
        nws::runtime::set_threads(None);
        assert_eq!(replica.memory().fingerprint(), GOLDEN_FAULT_MEMORY);
        // The replica serves the primary's exact answers.
        use nws::server::Dispatch;
        for host in &hosts {
            let req = Request::Forecast {
                host: host.to_string(),
            };
            let from_primary = state.lock().unwrap().dispatch(&req);
            let from_replica = replica.dispatch(&req);
            assert_eq!(from_primary, from_replica, "host {host}");
        }
        let snap_p = state.lock().unwrap().dispatch(&Request::Snapshot);
        let snap_r = replica.dispatch(&Request::Snapshot);
        assert_eq!(snap_p, snap_r);
    }
}

#[test]
fn failover_keeps_serving_through_a_primary_crash() {
    let hosts: Vec<&str> = HostProfile::all().iter().map(|p| p.name()).collect();
    let host = hosts[0].to_string();
    nws::runtime::set_threads(Some(1));
    let mut gm = build_grid(false, EngineSetup::REFERENCE);
    gm.attach_journal(Wal::new());
    gm.run_steps(STEPS);
    nws::runtime::set_threads(None);

    // Primary serves over TCP; the replica catches up over the same
    // wire protocol, then serves over TCP itself.
    let mut primary = NwsServer::spawn(GridState::new(gm), ServerConfig::default()).expect("bind");
    let mut feed = NwsClient::connect(primary.addr(), ClientConfig::default()).expect("connect");
    let mut replica = ReplicaState::new(&hosts, GridMonitorConfig::default());
    replica.sync(&mut feed).expect("replicate over tcp");
    assert!(replica.synced());
    assert_eq!(replica.memory().fingerprint(), GOLDEN_CLEAN_MEMORY);
    let replica_server = NwsServer::spawn(replica, ServerConfig::default()).expect("bind");

    let mut client = FailoverClient::new(
        &[primary.addr(), replica_server.addr()],
        ClientConfig {
            io_timeout: std::time::Duration::from_millis(500),
            retries: 0,
            backoff_base: std::time::Duration::from_millis(1),
            backoff_cap: std::time::Duration::from_millis(5),
            ..ClientConfig::default()
        },
    );
    let before = client.forecast(&host).expect("primary serves");
    assert_eq!(client.failovers(), 0);

    // Kill the primary; the very next query fails over and the answer
    // is byte-identical because the replica is at the same revision.
    primary.shutdown();
    drop(primary);
    std::thread::sleep(std::time::Duration::from_millis(50));
    let after = client.forecast(&host).expect("replica serves");
    assert_eq!(before, after, "failover is invisible in the answer");
    assert!(client.failovers() >= 1);
    assert_eq!(client.preferred(), replica_server.addr());

    // A full snapshot from the replica matches what the primary served.
    match client.call(&Request::Snapshot).expect("snapshot") {
        Response::Snapshot(s) => assert_eq!(s.hosts.len(), hosts.len()),
        other => panic!("wrong reply: {other:?}"),
    }
}

/// Recording harness for the memory-fingerprint goldens above. Run with
/// `cargo test --test durability -- --ignored --nocapture goldens`.
#[test]
#[ignore]
fn print_durability_goldens() {
    let (_, gm) = journaled_run(false, 1);
    println!("GOLDEN_CLEAN_MEMORY: {:#018x}", gm.memory().fingerprint());
    let (_, gm) = journaled_run(true, 1);
    println!("GOLDEN_FAULT_MEMORY: {:#018x}", gm.memory().fingerprint());
}
