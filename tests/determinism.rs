//! Reproducibility guarantees: every experiment is a pure function of its
//! seed. This is what lets the repro harness regenerate the tables
//! bit-identically.

use nws::core::experiments::{short_dataset, table1_from, ExperimentConfig};
use nws::sched::experiment::{run_scheduling_experiment, SchedConfig};
use nws::sim::HostProfile;
use nws::stats::{DaviesHarte, Hosking, Rng};

#[test]
fn tables_are_bit_identical_across_runs() {
    let cfg = ExperimentConfig::quick();
    let a = table1_from(&short_dataset(&cfg));
    let b = table1_from(&short_dataset(&cfg));
    assert_eq!(a, b);
}

#[test]
fn seeds_change_values_but_not_shape() {
    let t_a = table1_from(&short_dataset(&ExperimentConfig {
        seed: 1,
        ..ExperimentConfig::quick()
    }));
    let t_b = table1_from(&short_dataset(&ExperimentConfig {
        seed: 2,
        ..ExperimentConfig::quick()
    }));
    // Different realizations...
    assert_ne!(t_a, t_b);
    // ...same qualitative structure: both pathologies in both runs.
    for t in [&t_a, &t_b] {
        let con = t.row("conundrum").expect("row exists");
        assert!(con.load > con.hybrid);
        let kongo = t.row("kongo").expect("row exists");
        assert!(kongo.hybrid > kongo.load);
    }
}

#[test]
fn host_traces_replay_exactly() {
    let run = |seed| {
        let mut h = HostProfile::Thing2.build(seed);
        h.advance(3600.0);
        (
            h.load_average().one_minute(),
            h.accounting().user,
            h.runnable_count(),
        )
    };
    assert_eq!(run(99), run(99));
    assert_ne!(run(99), run(100));
}

#[test]
fn fgn_generators_replay_exactly() {
    let dh = DaviesHarte::new(0.72).expect("valid H");
    assert_eq!(
        dh.sample(512, &mut Rng::new(5)).expect("sample"),
        dh.sample(512, &mut Rng::new(5)).expect("sample")
    );
    let ho = Hosking::new(0.72).expect("valid H");
    assert_eq!(
        ho.sample(256, &mut Rng::new(5)).expect("sample"),
        ho.sample(256, &mut Rng::new(5)).expect("sample")
    );
}

#[test]
fn scheduling_experiment_replays_exactly() {
    let a = run_scheduling_experiment(&SchedConfig::quick());
    let b = run_scheduling_experiment(&SchedConfig::quick());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.policy, y.policy);
        assert_eq!(x.makespan, y.makespan);
        assert_eq!(x.availabilities, y.availabilities);
    }
}
