//! Reproducibility guarantees: every experiment is a pure function of its
//! seed. This is what lets the repro harness regenerate the tables
//! bit-identically.

use nws::core::experiments::{
    all_datasets, medium_dataset, short_dataset, table1_from, weekly_load_series, ExperimentConfig,
};
use nws::sched::experiment::{run_scheduling_experiment, SchedConfig};
use nws::sim::HostProfile;
use nws::stats::{DaviesHarte, Hosking, Rng};

#[test]
fn tables_are_bit_identical_across_runs() {
    let cfg = ExperimentConfig::quick();
    let a = table1_from(&short_dataset(&cfg));
    let b = table1_from(&short_dataset(&cfg));
    assert_eq!(a, b);
}

#[test]
fn seeds_change_values_but_not_shape() {
    let t_a = table1_from(&short_dataset(&ExperimentConfig {
        seed: 1,
        ..ExperimentConfig::quick()
    }));
    let t_b = table1_from(&short_dataset(&ExperimentConfig {
        seed: 2,
        ..ExperimentConfig::quick()
    }));
    // Different realizations...
    assert_ne!(t_a, t_b);
    // ...same qualitative structure: both pathologies in both runs.
    for t in [&t_a, &t_b] {
        let con = t.row("conundrum").expect("row exists");
        assert!(con.load > con.hybrid);
        let kongo = t.row("kongo").expect("row exists");
        assert!(kongo.hybrid > kongo.load);
    }
}

#[test]
fn host_traces_replay_exactly() {
    let run = |seed| {
        let mut h = HostProfile::Thing2.build(seed);
        h.advance(3600.0);
        (
            h.load_average().one_minute(),
            h.accounting().user,
            h.runnable_count(),
        )
    };
    assert_eq!(run(99), run(99));
    assert_ne!(run(99), run(100));
}

#[test]
fn fgn_generators_replay_exactly() {
    let dh = DaviesHarte::new(0.72).expect("valid H");
    assert_eq!(
        dh.sample(512, &mut Rng::new(5)).expect("sample"),
        dh.sample(512, &mut Rng::new(5)).expect("sample")
    );
    let ho = Hosking::new(0.72).expect("valid H");
    assert_eq!(
        ho.sample(256, &mut Rng::new(5)).expect("sample"),
        ho.sample(256, &mut Rng::new(5)).expect("sample")
    );
}

#[test]
fn parallel_datasets_are_bit_identical_to_sequential() {
    // The experiment drivers fan out over hosts through nws-runtime;
    // ordered result reassembly must make thread count unobservable.
    // Exercised at 1 worker (guaranteed sequential fallback) vs 4.
    let cfg = ExperimentConfig::quick();
    let collect = |threads: usize| {
        nws::runtime::set_threads(Some(threads));
        let short = short_dataset(&cfg);
        let medium = medium_dataset(&cfg);
        let weekly = weekly_load_series(&cfg);
        let (short_c, medium_c, weekly_c) = all_datasets(&cfg);
        nws::runtime::set_threads(None);
        (short, medium, weekly, short_c, medium_c, weekly_c)
    };
    let seq = collect(1);
    let par = collect(4);

    for (outs_seq, outs_par) in [
        (&seq.0, &par.0),
        (&seq.1, &par.1),
        (&seq.3, &par.3),
        (&seq.4, &par.4),
    ] {
        assert_eq!(outs_seq.len(), outs_par.len());
        for (a, b) in outs_seq.iter().zip(outs_par.iter()) {
            assert_eq!(a.host, b.host);
            assert_eq!(a.series.load.values(), b.series.load.values());
            assert_eq!(a.series.vmstat.values(), b.series.vmstat.values());
            assert_eq!(a.series.hybrid.values(), b.series.hybrid.values());
            assert_eq!(a.tests.len(), b.tests.len());
            for (ta, tb) in a.tests.iter().zip(b.tests.iter()) {
                assert_eq!(ta.value, tb.value);
                assert_eq!(ta.prior.hybrid, tb.prior.hybrid);
            }
        }
    }
    for (ws, wp) in [(&seq.2, &par.2), (&seq.5, &par.5)] {
        for (a, b) in ws.iter().zip(wp.iter()) {
            assert_eq!(a.values(), b.values());
        }
    }
}

#[test]
fn faulted_grid_replays_bit_identically_across_thread_counts() {
    // The fault-injection layer must not break the thread-count
    // guarantee: the same seed and the same FaultPlan produce identical
    // measurement series, gap records, and fault statistics whether the
    // fleet runs on one worker or four.
    use nws::faults::{FaultPlan, FaultRates};
    use nws::grid::{GridMonitor, GridMonitorConfig, Metric};

    let run = |threads: usize| {
        nws::runtime::set_threads(Some(threads));
        let mut gm = GridMonitor::with_faults(
            &HostProfile::all(),
            4242,
            GridMonitorConfig::default(),
            FaultPlan::seeded(17, FaultRates::uniform(0.12)),
        );
        gm.run_steps(120);
        nws::runtime::set_threads(None);
        let mut out = Vec::new();
        for p in HostProfile::all() {
            let id = gm
                .registry()
                .lookup(p.name(), Metric::CpuAvailabilityHybrid)
                .expect("registered");
            let pts: Vec<(f64, f64)> = gm.memory().with_series(id, |times, values| {
                times.iter().copied().zip(values.iter().copied()).collect()
            });
            out.push((pts, gm.memory().gaps(id), gm.memory().dropped(id)));
        }
        (out, gm.fault_stats())
    };
    let (series1, stats1) = run(1);
    let (series4, stats4) = run(4);
    assert_eq!(series1, series4);
    assert_eq!(stats1, stats4);
    assert!(stats1.gaps > 0, "nonzero intensity must produce gaps");
}

#[test]
fn scheduling_experiment_replays_exactly() {
    let a = run_scheduling_experiment(&SchedConfig::quick());
    let b = run_scheduling_experiment(&SchedConfig::quick());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.policy, y.policy);
        assert_eq!(x.makespan, y.makespan);
        assert_eq!(x.availabilities, y.availabilities);
    }
}
