//! Engine determinism and golden equivalence.
//!
//! The event-engine refactor must be invisible in the data: the same
//! seeded scenario produces bit-identical Memory series, forecast CSV
//! lines, and served wire bytes as the pre-refactor lockstep loops. The
//! goldens below were recorded from the pre-refactor pipeline (commit
//! d1793fb) and pin that equivalence; every engine configuration —
//! thread counts, clocks, batch sizes — must keep reproducing them.

use nws::faults::{FaultPlan, FaultRates};
use nws::grid::{GridMonitor, GridMonitorConfig, Metric, WeatherService};
use nws::runtime::StepClock;
use nws::server::{GridState, InMemoryTransport, Transport};
use nws::sim::HostProfile;
use nws::wire::Request;
use std::sync::{Arc, Mutex};

/// FNV-1a over an explicit byte stream: the fingerprint accumulator.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    fn str(&mut self, s: &str) {
        self.bytes(s.as_bytes());
    }
}

const METRICS: [Metric; 4] = [
    Metric::CpuAvailabilityLoad,
    Metric::CpuAvailabilityVmstat,
    Metric::CpuAvailabilityHybrid,
    Metric::LoadAverage,
];

/// Hashes every retained measurement bit, gap timestamp, drop count, and
/// a forecast-CSV line per series, plus the fleet fault stats.
fn grid_fingerprint(gm: &GridMonitor) -> u64 {
    let mut h = Fnv::new();
    let now = gm.now();
    h.f64(now);
    for p in HostProfile::all() {
        for metric in METRICS {
            let id = gm.registry().lookup(p.name(), metric).expect("registered");
            h.u64(gm.memory().len(id) as u64);
            gm.memory().with_series(id, |times, values| {
                for (&t, &v) in times.iter().zip(values) {
                    h.f64(t);
                    h.f64(v);
                }
            });
            for g in gm.memory().gaps(id) {
                h.f64(g);
            }
            h.u64(gm.memory().dropped(id));
            // One forecast-CSV line per series, hashed bit-for-bit.
            let line = match gm.forecasts().forecast_at(id, now) {
                None => format!("{},{:?},cold\n", p.name(), metric),
                Some(a) => {
                    let iv = a.interval.as_ref().map_or_else(
                        || "-".to_string(),
                        |iv| format!("{:016x}:{:016x}", iv.lo.to_bits(), iv.hi.to_bits()),
                    );
                    format!(
                        "{},{:?},{:016x},{},{},{:016x},{:016x},{}\n",
                        p.name(),
                        metric,
                        a.forecast.value.to_bits(),
                        a.forecast.method,
                        a.observations,
                        a.staleness.to_bits(),
                        a.confidence.to_bits(),
                        iv
                    )
                }
            };
            h.str(&line);
        }
    }
    let st = gm.fault_stats();
    for v in [
        st.slots,
        st.delivered,
        st.gaps,
        st.outage_slots,
        st.reboots,
        st.probe_attempts_failed,
        st.probes_abandoned,
        st.fallback_cross,
        st.delayed,
        st.late_delivered,
        st.late_dropped,
    ] {
        h.u64(v);
    }
    h.0
}

/// The fixed request script served against every scenario.
fn request_script() -> Vec<Request> {
    let hosts: Vec<String> = HostProfile::all()
        .iter()
        .map(|p| p.name().to_string())
        .collect();
    let mut seq = vec![Request::Snapshot, Request::BestHost];
    for h in &hosts {
        seq.push(Request::Forecast { host: h.clone() });
        seq.push(Request::SeriesTail {
            host: h.clone(),
            n: 24,
        });
    }
    seq.push(Request::Batch(
        hosts
            .iter()
            .map(|h| Request::Forecast { host: h.clone() })
            .collect(),
    ));
    seq.push(Request::Stats);
    seq
}

/// Hashes the exact wire bytes the serving layer emits for the script.
fn served_fingerprint(gm: GridMonitor) -> u64 {
    let mut t = InMemoryTransport::new(Arc::new(Mutex::new(GridState::new(gm))));
    let mut h = Fnv::new();
    for req in request_script() {
        let (_, bytes) = t.call_raw(&req).expect("dispatch");
        h.u64(bytes.len() as u64);
        h.bytes(&bytes);
    }
    h.0
}

/// Hashes both halves of the combined weather service: the CPU grid plus
/// the network memories and bandwidth forecasts.
fn weather_fingerprint(ws: &WeatherService) -> u64 {
    let mut h = Fnv::new();
    h.u64(grid_fingerprint(ws.cpu()));
    for link in ["ucsd->utk", "ucsd->uva", "ucsd-lan"] {
        for metric in [Metric::NetworkBandwidth, Metric::NetworkLatency] {
            let id = ws.net_registry().lookup(link, metric).expect("registered");
            h.u64(ws.net_memory().len(id) as u64);
            ws.net_memory().with_series(id, |times, values| {
                for (&t, &v) in times.iter().zip(values) {
                    h.f64(t);
                    h.f64(v);
                }
            });
            for g in ws.net_memory().gaps(id) {
                h.f64(g);
            }
        }
        match ws.bandwidth_forecast(link) {
            None => h.str("cold"),
            Some(a) => {
                h.f64(a.forecast.value);
                h.str(&a.forecast.method);
            }
        }
    }
    h.0
}

const SEED: u64 = 4242;
const STEPS: u64 = 120;

/// The pre-refactor pipeline's fingerprints, recorded at commit d1793fb
/// (lockstep `for host { measure; publish }` loops, manual tick
/// interleaving, no engine). Every engine configuration must keep
/// reproducing these exact bits.
const GOLDEN_CLEAN_STATE: u64 = 0xaacf_b64a_5e5e_e354;
const GOLDEN_CLEAN_SERVED: u64 = 0x8ce4_4a79_32c2_65e2;
const GOLDEN_FAULT_STATE: u64 = 0xdbaa_fa67_5dbc_a4ac;
const GOLDEN_FAULT_SERVED: u64 = 0x3948_2553_fb2c_3ced;
const GOLDEN_WEATHER: u64 = 0x139c_5275_9273_0875;

/// How one scenario paces and batches the engine.
#[derive(Clone, Copy, Debug)]
struct EngineSetup {
    threads: usize,
    batch_slots: usize,
    /// `None` = virtual clock; `Some(q)` = a [`StepClock`] with quantum
    /// `q` seconds.
    step_quantum: Option<f64>,
}

impl EngineSetup {
    const REFERENCE: EngineSetup = EngineSetup {
        threads: 1,
        batch_slots: 64,
        step_quantum: None,
    };
}

fn build_grid(faulted: bool, setup: EngineSetup) -> GridMonitor {
    let plan = if faulted {
        FaultPlan::seeded(17, FaultRates::uniform(0.12))
    } else {
        FaultPlan::none()
    };
    let config = GridMonitorConfig {
        batch_slots: setup.batch_slots,
        ..GridMonitorConfig::default()
    };
    match setup.step_quantum {
        None => GridMonitor::with_faults(&HostProfile::all(), SEED, config, plan),
        Some(q) => GridMonitor::with_clock(
            &HostProfile::all(),
            SEED,
            config,
            plan,
            Box::new(StepClock::new(q)),
        ),
    }
}

/// Runs one scenario under a setup: (state fingerprint, served bytes
/// fingerprint).
fn scenario(setup: EngineSetup, faulted: bool) -> (u64, u64) {
    nws::runtime::set_threads(Some(setup.threads));
    let mut gm = build_grid(faulted, setup);
    gm.run_steps(STEPS);
    nws::runtime::set_threads(None);
    let state = grid_fingerprint(&gm);
    (state, served_fingerprint(gm))
}

fn weather_scenario(threads: usize) -> u64 {
    nws::runtime::set_threads(Some(threads));
    let mut ws = WeatherService::ucsd(7);
    ws.advance(3600.0);
    nws::runtime::set_threads(None);
    weather_fingerprint(&ws)
}

/// The full equivalence matrix: threads × batch window × clock, clean and
/// faulted, all pinned to the pre-refactor goldens.
fn setups() -> Vec<EngineSetup> {
    let mut out = Vec::new();
    for threads in [1, 4] {
        for batch_slots in [1, 16, 64] {
            for step_quantum in [None, Some(10.0)] {
                out.push(EngineSetup {
                    threads,
                    batch_slots,
                    step_quantum,
                });
            }
        }
    }
    out
}

#[test]
fn engine_reproduces_prerefactor_grid_bit_for_bit() {
    for setup in setups() {
        let (state, served) = scenario(setup, false);
        assert_eq!(state, GOLDEN_CLEAN_STATE, "{setup:?}");
        assert_eq!(served, GOLDEN_CLEAN_SERVED, "{setup:?}");
    }
}

#[test]
fn engine_reproduces_prerefactor_faulted_grid_bit_for_bit() {
    for setup in setups() {
        let (state, served) = scenario(setup, true);
        assert_eq!(state, GOLDEN_FAULT_STATE, "{setup:?}");
        assert_eq!(served, GOLDEN_FAULT_SERVED, "{setup:?}");
    }
}

#[test]
fn engine_reproduces_prerefactor_weather_service_bit_for_bit() {
    for threads in [1, 4] {
        assert_eq!(
            weather_scenario(threads),
            GOLDEN_WEATHER,
            "threads={threads}"
        );
    }
}

/// A quantized step clock whose quantum does NOT divide the measurement
/// period still lands on the same slots and bits — the clock paces, the
/// engine orders.
#[test]
fn coarse_step_clock_does_not_change_the_bits() {
    let setup = EngineSetup {
        threads: 2,
        batch_slots: 16,
        step_quantum: Some(7.0),
    };
    assert_eq!(
        scenario(setup, true),
        scenario(EngineSetup::REFERENCE, true)
    );
}

/// Recording harness: prints the fingerprints the goldens above pin.
/// Run with `cargo test --test engine -- --ignored --nocapture goldens`.
#[test]
#[ignore]
fn print_goldens() {
    let (clean_state, clean_served) = scenario(EngineSetup::REFERENCE, false);
    let (fault_state, fault_served) = scenario(EngineSetup::REFERENCE, true);
    let weather = weather_scenario(1);
    println!("GOLDEN_CLEAN_STATE: {clean_state:#018x}");
    println!("GOLDEN_CLEAN_SERVED: {clean_served:#018x}");
    println!("GOLDEN_FAULT_STATE: {fault_state:#018x}");
    println!("GOLDEN_FAULT_SERVED: {fault_served:#018x}");
    println!("GOLDEN_WEATHER: {weather:#018x}");
}
