//! Engine determinism and golden equivalence.
//!
//! The event-engine refactor must be invisible in the data: the same
//! seeded scenario produces bit-identical Memory series, forecast CSV
//! lines, and served wire bytes as the pre-refactor lockstep loops. The
//! goldens (in `tests/common`) were recorded from the pre-refactor
//! pipeline (commit d1793fb) and pin that equivalence; every engine
//! configuration — thread counts, clocks, batch sizes — must keep
//! reproducing them.

mod common;

use common::*;
use nws::grid::{Metric, WeatherService};

/// Hashes both halves of the combined weather service: the CPU grid plus
/// the network memories and bandwidth forecasts.
fn weather_fingerprint(ws: &WeatherService) -> u64 {
    let mut h = Fnv::new();
    h.u64(grid_fingerprint(ws.cpu()));
    for link in ["ucsd->utk", "ucsd->uva", "ucsd-lan"] {
        for metric in [Metric::NetworkBandwidth, Metric::NetworkLatency] {
            let id = ws.net_registry().lookup(link, metric).expect("registered");
            h.u64(ws.net_memory().len(id) as u64);
            ws.net_memory().with_series(id, |times, values| {
                for (&t, &v) in times.iter().zip(values) {
                    h.f64(t);
                    h.f64(v);
                }
            });
            for g in ws.net_memory().gaps(id) {
                h.f64(g);
            }
        }
        match ws.bandwidth_forecast(link) {
            None => h.str("cold"),
            Some(a) => {
                h.f64(a.forecast.value);
                h.str(&a.forecast.method);
            }
        }
    }
    h.0
}

fn weather_scenario(threads: usize) -> u64 {
    nws::runtime::set_threads(Some(threads));
    let mut ws = WeatherService::ucsd(7);
    ws.advance(3600.0);
    nws::runtime::set_threads(None);
    weather_fingerprint(&ws)
}

#[test]
fn engine_reproduces_prerefactor_grid_bit_for_bit() {
    for setup in setups() {
        let (state, served) = scenario(setup, false);
        assert_eq!(state, GOLDEN_CLEAN_STATE, "{setup:?}");
        assert_eq!(served, GOLDEN_CLEAN_SERVED, "{setup:?}");
    }
}

#[test]
fn engine_reproduces_prerefactor_faulted_grid_bit_for_bit() {
    for setup in setups() {
        let (state, served) = scenario(setup, true);
        assert_eq!(state, GOLDEN_FAULT_STATE, "{setup:?}");
        assert_eq!(served, GOLDEN_FAULT_SERVED, "{setup:?}");
    }
}

#[test]
fn engine_reproduces_prerefactor_weather_service_bit_for_bit() {
    for threads in [1, 4] {
        assert_eq!(
            weather_scenario(threads),
            GOLDEN_WEATHER,
            "threads={threads}"
        );
    }
}

/// A quantized step clock whose quantum does NOT divide the measurement
/// period still lands on the same slots and bits — the clock paces, the
/// engine orders.
#[test]
fn coarse_step_clock_does_not_change_the_bits() {
    let setup = EngineSetup {
        threads: 2,
        batch_slots: 16,
        step_quantum: Some(7.0),
    };
    assert_eq!(
        scenario(setup, true),
        scenario(EngineSetup::REFERENCE, true)
    );
}

/// Recording harness: prints the fingerprints the goldens above pin.
/// Run with `cargo test --test engine -- --ignored --nocapture goldens`.
#[test]
#[ignore]
fn print_goldens() {
    let (clean_state, clean_served) = scenario(EngineSetup::REFERENCE, false);
    let (fault_state, fault_served) = scenario(EngineSetup::REFERENCE, true);
    let weather = weather_scenario(1);
    println!("GOLDEN_CLEAN_STATE: {clean_state:#018x}");
    println!("GOLDEN_CLEAN_SERVED: {clean_served:#018x}");
    println!("GOLDEN_FAULT_STATE: {fault_state:#018x}");
    println!("GOLDEN_FAULT_SERVED: {fault_served:#018x}");
    println!("GOLDEN_WEATHER: {weather:#018x}");
}
