//! `nws` — umbrella crate for the NWS CPU availability prediction
//! reproduction (Wolski, Spring & Hayes, HPDC 1999).
//!
//! This crate re-exports the workspace's public API under one roof so the
//! examples and integration tests can `use nws::…`. See the individual
//! crates for the substance:
//!
//! - [`forecast`] — the NWS forecaster panel with dynamic predictor
//!   selection (the paper's primary contribution).
//! - [`sensors`] — the three CPU availability sensors (load average,
//!   vmstat, hybrid probe) and the test process.
//! - [`sim`] — the time-shared Unix host simulator the sensors run against.
//! - [`stats`] — autocorrelation, R/S analysis, Hurst estimation,
//!   fractional Gaussian noise, FFT, RNG, distributions.
//! - [`timeseries`] — series container, windows, aggregation, CSV.
//! - [`core`] — the monitoring pipeline and the drivers that regenerate
//!   every table and figure in the paper.
//! - [`sched`] — the motivating application: dynamic scheduling with
//!   forecast-derived expansion factors.
//! - [`grid`] — a miniature Network Weather Service: registry, measurement
//!   memory, and forecast service over a fleet of monitored hosts.
//! - [`net`] — the network half of the weather service: simulated
//!   wide-area links with self-similar cross-traffic, bandwidth/latency
//!   sensors, and forecasting over their series.
//! - [`runtime`] — deterministic parallel execution (`parallel_map`,
//!   thread-count resolution) used by the experiment drivers.
//! - [`faults`] — deterministic, seeded fault injection (sensor
//!   dropouts, probe failures, host outages, delayed delivery) threaded
//!   through the grid measurement path.
//! - [`wire`] — the dependency-free length-prefixed binary protocol the
//!   forecast-serving subsystem speaks.
//! - [`server`] — the serving subsystem itself: TCP server, typed
//!   client with retry-and-reconnect, revision-validated query cache,
//!   and a socket-free in-memory transport for determinism tests.
//! - [`loadgen`] — coordinated-omission-free workload generator and
//!   latency harness: open-loop arrival schedules, mixed query
//!   streams, log-bucketed histograms, and adversarial personas.

pub use nws_core as core;
pub use nws_faults as faults;
pub use nws_forecast as forecast;
pub use nws_grid as grid;
pub use nws_loadgen as loadgen;
pub use nws_net as net;
pub use nws_runtime as runtime;
pub use nws_sched as sched;
pub use nws_sensors as sensors;
pub use nws_server as server;
pub use nws_sim as sim;
pub use nws_stats as stats;
pub use nws_timeseries as timeseries;
pub use nws_wire as wire;
