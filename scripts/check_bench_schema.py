#!/usr/bin/env python3
"""Structural diff of two benchmark JSON artifacts.

CI regenerates each tracked benchmark at smoke tier and compares its
*structure* (nested key sets and value kinds) against the committed
baseline. Numbers are expected to differ run to run; a missing or
renamed key means the producer and the tracked baseline have drifted
apart and the baseline needs regenerating.

Array elements are folded together under one `[*]` path: every tier
emits the same per-entry schema, only the number of entries varies.

Usage: check_bench_schema.py BASELINE.json CANDIDATE.json
Exits 0 when the structures match, 1 with a path-level diff otherwise.
"""

import json
import sys

# Sections every BENCH_perf.json must carry, whatever the tier. The
# structural diff below catches drift between two artifacts; this list
# catches the case where *both* sides lost a section.
REQUIRED_PERF_SECTIONS = (
    "acf",
    "hurst",
    "ingest",
    "memory_read",
    "drivers",
    "engine",
    "fleet",
    "forecast_quality",
    "durability",
    "serve",
)

# Sections every BENCH_serve.json (the `repro load` artifact) must
# carry. Keyed on the presence of "open_loop" so the perf artifact and
# other benchmark files pass through untouched.
REQUIRED_SERVE_SECTIONS = (
    "tier",
    "workers",
    "mix",
    "open_loop",
    "closed_loop",
    "max_sustainable_rps",
    "soak",
    "churn",
    "concurrency",
    "personas",
    "failover",
)


def shape(node, path="$"):
    """The structure of a JSON value as a set of (path, kind) pairs."""
    out = set()
    if isinstance(node, dict):
        out.add((path, "object"))
        for key, value in node.items():
            out |= shape(value, f"{path}.{key}")
    elif isinstance(node, list):
        out.add((path, "array"))
        for value in node:
            out |= shape(value, f"{path}[*]")
    elif isinstance(node, bool):
        out.add((path, "bool"))
    elif isinstance(node, (int, float)):
        out.add((path, "number"))
    elif isinstance(node, str):
        out.add((path, "string"))
    else:
        out.add((path, "null"))
    return out


def main():
    if len(sys.argv) != 3:
        sys.exit(f"usage: {sys.argv[0]} BASELINE.json CANDIDATE.json")
    baseline_path, candidate_path = sys.argv[1], sys.argv[2]
    with open(baseline_path) as f:
        baseline_doc = json.load(f)
    with open(candidate_path) as f:
        candidate_doc = json.load(f)

    for name, doc in ((baseline_path, baseline_doc), (candidate_path, candidate_doc)):
        if isinstance(doc, dict) and "engine" in doc:
            absent = [s for s in REQUIRED_PERF_SECTIONS if s not in doc]
            if absent:
                sys.exit(f"{name}: missing required sections: {', '.join(absent)}")
        if isinstance(doc, dict) and "open_loop" in doc:
            absent = [s for s in REQUIRED_SERVE_SECTIONS if s not in doc]
            if absent:
                sys.exit(f"{name}: missing required sections: {', '.join(absent)}")

    baseline = shape(baseline_doc)
    candidate = shape(candidate_doc)

    missing = sorted(baseline - candidate)
    extra = sorted(candidate - baseline)
    for path, kind in missing:
        print(f"missing from {candidate_path}: {path} ({kind})")
    for path, kind in extra:
        print(f"not in {baseline_path}: {path} ({kind})")
    if missing or extra:
        sys.exit(1)
    print(f"schema ok: {candidate_path} matches {baseline_path} ({len(baseline)} paths)")


if __name__ == "__main__":
    main()
