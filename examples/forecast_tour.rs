//! A tour of the NWS forecaster panel on series with different structure.
//!
//! ```sh
//! cargo run --release --example forecast_tour
//! ```
//!
//! The NWS design bet is that *no single* cheap predictor wins everywhere,
//! but dynamically selecting the recently-best one is competitive with
//! whichever happens to win on a given series. This example makes the bet
//! visible: it builds five synthetic series with very different structure
//! (level shift, trend, alternating noise, mean-reverting AR(1), and
//! fractional Gaussian noise with H = 0.8), scores every fixed panel member
//! and the dynamic selection on each, and prints the leaderboard.

use nws::forecast::{evaluate_one_step, NwsForecaster};
use nws::stats::{DaviesHarte, Rng};

fn series_zoo() -> Vec<(&'static str, Vec<f64>)> {
    let n = 2000;
    let mut rng = Rng::new(4242);
    // Level shift: stable, jumps once, stable again.
    let shift: Vec<f64> = (0..n).map(|i| if i < n / 2 { 0.8 } else { 0.3 }).collect();
    // Slow ramp.
    let ramp: Vec<f64> = (0..n).map(|i| 0.2 + 0.6 * i as f64 / n as f64).collect();
    // Alternating noise around a level (worst case for last-value).
    let mut alt_rng = rng.fork("alt");
    let alternating: Vec<f64> = (0..n)
        .map(|i| {
            let base = if i % 2 == 0 { 0.45 } else { 0.55 };
            (base + 0.05 * (alt_rng.next_f64() - 0.5)).clamp(0.0, 1.0)
        })
        .collect();
    // Mean-reverting AR(1).
    let mut ar_rng = rng.fork("ar");
    let mut x = 0.5f64;
    let ar1: Vec<f64> = (0..n)
        .map(|_| {
            x = 0.9 * x + 0.05 + 0.08 * (ar_rng.next_f64() - 0.5);
            x.clamp(0.0, 1.0)
        })
        .collect();
    // Long-range dependent fGn mapped into [0, 1].
    let mut fgn_rng = rng.fork("fgn");
    let fgn: Vec<f64> = DaviesHarte::new(0.8)
        .expect("valid H")
        .sample(n, &mut fgn_rng)
        .expect("nonzero length")
        .into_iter()
        .map(|z| (0.6 + 0.12 * z).clamp(0.0, 1.0))
        .collect();
    vec![
        ("level-shift", shift),
        ("ramp", ramp),
        ("alternating", alternating),
        ("ar1", ar1),
        ("fgn(H=0.8)", fgn),
    ]
}

fn main() {
    for (name, series) in series_zoo() {
        let mut nws = NwsForecaster::nws_default();
        let report = evaluate_one_step(&mut nws, &series).expect("long series");
        let mut fixed = nws.error_summary();
        fixed.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite MAE"));
        let (best_name, best_mae) = &fixed[0];
        let (worst_name, worst_mae) = fixed.last().expect("non-empty panel");
        println!("series: {name}");
        println!(
            "  dynamic selection MAE {:.3}  (best fixed: {best_name} at {:.3}, \
             worst fixed: {worst_name} at {:.3})",
            report.mae, best_mae, worst_mae
        );
        let verdict = if report.mae <= best_mae * 1.1 {
            "dynamic ~ matches the best member"
        } else if report.mae <= best_mae * 1.3 {
            "dynamic within 30% of the best member"
        } else {
            "dynamic trails the best member here"
        };
        println!("  -> {verdict}");
        // Show the top three members for flavour.
        for (n, m) in fixed.iter().take(3) {
            println!("     {:<18} {:.3}", n, m);
        }
        println!();
    }
    println!(
        "The winner changes from series to series — exactly why the NWS\n\
         carries a panel and selects dynamically instead of committing to one\n\
         model."
    );
}
