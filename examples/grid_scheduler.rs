//! Grid scheduler: place a bag of tasks across the six simulated hosts.
//!
//! ```sh
//! cargo run --release --example grid_scheduler
//! ```
//!
//! Reenacts the paper's motivating scenario: an application-level scheduler
//! must choose where to run CPU-bound tasks on a shared, time-varying set of
//! machines. It compares five placement policies — two NWS-forecast-driven
//! (hybrid-sensor and load-average series), raw instantaneous load average,
//! round-robin, and random — on identical task bags and identical
//! background-load realizations, then executes each placement on the live
//! simulation and reports real makespans.

use nws::sched::experiment::{run_scheduling_experiment, SchedConfig};
use nws::sim::UCSD_HOST_NAMES;

fn main() {
    let cfg = SchedConfig::default();
    println!(
        "scheduling {} tasks of {:.0}-{:.0} CPU-seconds over {:?}",
        cfg.n_tasks, cfg.work_range.0, cfg.work_range.1, UCSD_HOST_NAMES
    );
    println!("(30-minute NWS measurement phase precedes placement)\n");

    let outcomes = run_scheduling_experiment(&cfg);
    let best = outcomes
        .iter()
        .map(|o| o.makespan)
        .fold(f64::INFINITY, f64::min);

    println!(
        "{:<14} {:>10} {:>10} {:>9}  availabilities used",
        "policy", "makespan", "predicted", "vs best"
    );
    for o in &outcomes {
        let avails: Vec<String> = o
            .availabilities
            .iter()
            .map(|a| format!("{:.0}%", a * 100.0))
            .collect();
        println!(
            "{:<14} {:>9.0}s {:>9.0}s {:>8.2}x  [{}]",
            o.policy.name(),
            o.makespan,
            o.predicted_makespan,
            o.makespan / best,
            avails.join(" ")
        );
    }

    println!("\ntask counts per host ({:?}):", UCSD_HOST_NAMES);
    for o in &outcomes {
        println!("  {:<14} {:?}", o.policy.name(), o.tasks_per_host);
    }
    println!(
        "\nNote the hybrid-forecast column for kongo: the probe bias makes the\n\
         hybrid sensor overestimate kongo's availability (the paper's Table 1\n\
         pathology), which this experiment converts into visibly misplaced work."
    );
}
