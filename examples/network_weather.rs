//! The network half of the weather service: probing and forecasting
//! bandwidth on simulated wide-area links.
//!
//! ```sh
//! cargo run --release --example network_weather
//! ```
//!
//! Three links (two congested WAN paths, one LAN) carry heavy-tailed
//! cross-traffic; the NWS bandwidth sensor times a 64 KB probe transfer on
//! each every two minutes, and the forecaster panel predicts the next
//! probe's throughput — the same measure-and-forecast loop as the paper's
//! CPU study, applied to the network resources its introduction motivates.

use nws::core::plot::ascii_series;
use nws::net::LinkMonitor;

fn human_bw(bytes_per_s: f64) -> String {
    format!("{:.2} Mbit/s", bytes_per_s * 8.0 / 1.0e6)
}

fn main() {
    let mut monitor = LinkMonitor::demo_grid(2026);
    println!(
        "probing {} links every 2 minutes for 8 simulated hours...",
        monitor.len()
    );
    monitor.run_probes(240);

    println!(
        "\n{:<11} {:>14} {:>10} {:>12} {:>16}",
        "link", "mean bw", "mean rtt", "1-step MAE", "next forecast"
    );
    for r in monitor.report() {
        println!(
            "{:<11} {:>14} {:>8.0}ms {:>11.1}% {:>16}",
            r.name,
            human_bw(r.mean_bandwidth),
            r.mean_latency * 1000.0,
            r.bandwidth_forecast_mae * 100.0,
            r.forecast.map(human_bw).unwrap_or_else(|| "-".into())
        );
    }

    let (bw, _) = monitor.series("ucsd->utk").expect("link exists");
    println!("\nucsd->utk probe throughput (bytes/s):");
    println!("{}", ascii_series(bw, 100, 10));
    println!(
        "Heavy-tailed cross-traffic makes the series bursty and long-range\n\
         dependent — the same structure the paper documents for CPU load —\n\
         yet the one-step forecasts stay in the usable band."
    );
}
