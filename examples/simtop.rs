//! `simtop`: a top(1)-style view into a simulated host.
//!
//! ```sh
//! cargo run --release --example simtop [hostname] [minutes]
//! ```
//!
//! Advances one of the UCSD profile hosts (default: kongo, where the
//! scheduler mechanics are most visible) and prints a process table every
//! simulated minute: pids, nice values, `p_cpu` decay state, dispatch
//! priorities, and CPU consumption — the internals behind every sensor
//! reading in the paper. Watch the resident hog's `p_cpu` sit near its
//! equilibrium while fresh session processes come and go with low values:
//! that asymmetry is exactly why kongo fools the 1.5-second probe.

use nws::sensors::availability_from_load;
use nws::sim::HostProfile;

fn main() {
    let mut args = std::env::args().skip(1);
    let host_name = args.next().unwrap_or_else(|| "kongo".to_string());
    let minutes: u64 = args
        .next()
        .map(|m| m.parse().expect("minutes must be a number"))
        .unwrap_or(5);
    let profile = HostProfile::by_name(&host_name).unwrap_or_else(|| {
        panic!(
            "unknown host {host_name:?}; try one of {:?}",
            nws::sim::UCSD_HOST_NAMES
        )
    });
    let mut host = profile.build(7);
    host.advance(1800.0); // steady state

    for frame in 0..minutes {
        host.advance(60.0);
        let load = host.load_average();
        println!(
            "\n=== {} @ t={:.0}s  load {:.2} {:.2} {:.2}  avail {:.0}%  ({} procs, {} runnable)",
            host.name(),
            host.now(),
            load.one_minute(),
            load.five_minute(),
            load.fifteen_minute(),
            availability_from_load(load.one_minute()) * 100.0,
            host.kernel().process_count(),
            host.runnable_count(),
        );
        println!(
            "{:>6} {:<22} {:>4} {:>5} {:>7} {:>8} {:>9} {:>8}",
            "PID", "NAME", "NICE", "STATE", "P_CPU", "PRIO", "CPU(s)", "AGE(s)"
        );
        let mut table = host.kernel().process_table();
        // Busiest first, like top.
        table.sort_by(|a, b| b.p_cpu.partial_cmp(&a.p_cpu).expect("finite"));
        for v in table.iter().take(12) {
            println!(
                "{:>6} {:<22} {:>4} {:>5} {:>7.1} {:>8.1} {:>9.1} {:>8.0}",
                v.pid.0,
                truncate(&v.name, 22),
                v.nice,
                if v.runnable { "run" } else { "sleep" },
                v.p_cpu,
                v.priority,
                v.cpu_time,
                v.age,
            );
        }
        if frame + 1 == minutes {
            println!(
                "\n(note the resident job's p_cpu equilibrium vs fresh processes at ~0 —\n\
                 the priority gap a short probe exploits)"
            );
        }
    }
}

fn truncate(s: &str, n: usize) -> String {
    if s.len() <= n {
        s.to_string()
    } else {
        format!("{}…", &s[..n - 1])
    }
}
