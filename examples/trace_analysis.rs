//! Self-similarity analysis of an availability trace (the paper's §3.1).
//!
//! ```sh
//! cargo run --release --example trace_analysis [hostname] [hours]
//! ```
//!
//! Collects a load-average availability trace from one simulated host
//! (default: thing2, 48 hours), then runs the paper's full analysis
//! toolkit: autocorrelation function, R/S pox-plot Hurst estimate, plus the
//! aggregated-variance and periodogram estimators as cross-checks, and the
//! `X^(m)` variance table for several aggregation levels.

use nws::core::monitor::{Monitor, MonitorConfig};
use nws::core::plot::{ascii_scatter, ascii_series};
use nws::sim::HostProfile;
use nws::stats::{
    aggregated_variance_hurst, autocorrelation, hurst_rs, periodogram_hurst, pox_plot,
};
use nws::timeseries::{aggregate_mean, summarize};

fn main() {
    let mut args = std::env::args().skip(1);
    let host_name = args.next().unwrap_or_else(|| "thing2".to_string());
    let hours: f64 = args
        .next()
        .map(|h| h.parse().expect("hours must be a number"))
        .unwrap_or(48.0);
    let profile = HostProfile::by_name(&host_name).unwrap_or_else(|| {
        panic!(
            "unknown host {host_name:?}; try one of {:?}",
            nws::sim::UCSD_HOST_NAMES
        )
    });

    println!("collecting {hours}h load-average availability trace from {host_name}...");
    let mut host = profile.build(777);
    let monitor = Monitor::new(MonitorConfig {
        duration: hours * 3600.0,
        warmup: 1800.0,
        test_period: None,
        ..MonitorConfig::default()
    });
    let out = monitor.run(&mut host);
    let series = out.series.load;
    let values = series.values();
    let summary = summarize(values).expect("non-empty trace");
    println!(
        "n = {}, mean availability {:.1}%, std {:.1}%\n",
        summary.n,
        summary.mean * 100.0,
        summary.std_dev * 100.0
    );
    println!("{}", ascii_series(&series, 100, 12));

    // Autocorrelation: the slow decay that motivates the Hurst analysis.
    let max_lag = 360.min(values.len().saturating_sub(2));
    let rho = autocorrelation(values, max_lag).expect("trace long enough");
    let at = |lag: usize| rho.get(lag).copied().unwrap_or(f64::NAN);
    println!(
        "autocorrelation: rho(1) = {:.2}, rho(6) [1 min] = {:.2}, rho(30) [5 min] = {:.2}, rho(360) [1 h] = {:.2}\n",
        at(1), at(6), at(30), at(360)
    );

    // Three Hurst estimators.
    let rs = hurst_rs(values, 10).expect("trace long enough");
    let av = aggregated_variance_hurst(values).expect("trace long enough");
    let pg = periodogram_hurst(values).expect("trace long enough");
    println!("Hurst estimates:");
    println!(
        "  R/S (pox plot)       H = {:.2}  (r² = {:.3})",
        rs.h, rs.fit.r_squared
    );
    println!(
        "  aggregated variance  H = {:.2}  (r² = {:.3})",
        av.h, av.fit.r_squared
    );
    println!(
        "  periodogram          H = {:.2}  (r² = {:.3})\n",
        pg.h, pg.fit.r_squared
    );

    let pox = pox_plot(values, 10);
    let pts: Vec<(f64, f64)> = pox.iter().map(|p| (p.log10_d, p.log10_rs)).collect();
    println!(
        "{}",
        ascii_scatter(
            &format!("pox plot, H = {:.2}", rs.h),
            &pts,
            Some((rs.fit.slope, rs.fit.intercept)),
            80,
            18,
        )
    );

    // Variance under aggregation: for self-similar series Var(X^(m))
    // decays like m^(2H-2), much slower than the 1/m of independent data.
    println!("variance under aggregation (X^(m) block means):");
    println!(
        "{:>6} {:>12} {:>14} {:>12}",
        "m", "Var(X^(m))", "vs 1/m decay", "m^(2H-2)"
    );
    let var0 = summary.variance;
    for m in [1usize, 3, 6, 30, 60, 180] {
        let agg = aggregate_mean(values, m);
        let var = summarize(&agg).map(|s| s.variance).unwrap_or(0.0);
        println!(
            "{:>6} {:>12.5} {:>14.5} {:>12.5}",
            m,
            var,
            var0 / m as f64,
            var0 * (m as f64).powf(2.0 * rs.h - 2.0)
        );
    }
}
