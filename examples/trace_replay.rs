//! Trace-driven simulation: record a host's load, replay it, re-measure.
//!
//! ```sh
//! cargo run --release --example trace_replay
//! ```
//!
//! The original NWS analyses were trace-driven. This example records two
//! hours of run-queue samples from the busy `thing2` profile, saves the
//! trace as CSV, replays it on a clean host, and verifies that the
//! *sensor-visible* behaviour survives the round trip: load averages,
//! Eq. 1 availability, and the NWS one-step forecasting error all match
//! the source host closely.

use nws::core::plot::ascii_series;
use nws::forecast::{evaluate_one_step, NwsForecaster};
use nws::sensors::LoadAvgSensor;
use nws::sim::{record_load_trace, Host, HostProfile, LoadTrace, TraceReplay};
use nws::timeseries::Series;

fn measure_availability(host: &mut Host, samples: usize) -> Series {
    let mut sensor = LoadAvgSensor::new();
    let mut series = Series::new(format!("{}/avail", host.name()));
    for _ in 0..samples {
        host.advance(10.0);
        series
            .push(host.now(), sensor.measure(host))
            .expect("time advances");
    }
    series
}

fn main() {
    // 1. Record two hours of run-queue samples from the source host.
    let mut source = HostProfile::Thing2.build(99);
    source.advance(1800.0);
    let trace = record_load_trace(&mut source, 5.0, 1440); // 2 h at 5 s
    println!(
        "recorded {} samples over {:.0}s from thing2: mean run-queue {:.2}",
        trace.len(),
        trace.span(),
        trace.mean_level()
    );

    // 2. Persist and reload (the CSV is also readable by nwscast --trace).
    let path = std::env::temp_dir().join("thing2-trace.csv");
    trace.save(&path).expect("temp dir writable");
    let reloaded = LoadTrace::load(&path).expect("round trip");
    assert_eq!(reloaded, trace);
    println!("saved + reloaded {} (bit-identical)", path.display());

    // 3. Rebuild the source host from the same seed (identical workload
    //    realization) and measure availability over the SAME window the
    //    trace covers...
    //    (skipping 300 s so the replay's load averages below have the same
    //    warm-up).
    let mut source_again = HostProfile::Thing2.build(99);
    source_again.advance(2100.0);
    let source_series = measure_availability(&mut source_again, 660);

    // 4. ...and replay the trace on a clean host over the same span.
    let mut sink = Host::new("replayed-thing2", 1);
    sink.add_workload(Box::new(TraceReplay::new("t2", reloaded)));
    sink.advance(300.0); // replay time 300 s == source time 2100 s
    let sink_series = measure_availability(&mut sink, 660);

    println!("\nsource availability:");
    println!("{}", ascii_series(&source_series, 90, 8));
    println!("replayed availability:");
    println!("{}", ascii_series(&sink_series, 90, 8));

    // 5. Compare what a scheduler would care about.
    let mean = |s: &Series| s.values().iter().sum::<f64>() / s.len() as f64;
    println!(
        "mean availability: source {:.2} vs replay {:.2}",
        mean(&source_series),
        mean(&sink_series)
    );
    let mae = |s: &Series| {
        let mut nws = NwsForecaster::nws_default();
        evaluate_one_step(&mut nws, s.values())
            .expect("long series")
            .mae
    };
    println!(
        "NWS one-step MAE:  source {:.3} vs replay {:.3}",
        mae(&source_series),
        mae(&sink_series)
    );
    println!(
        "\n(the replay reproduces the run-queue process, so sensors and\n\
         forecasters behave alike even though the underlying processes differ)"
    );
    let _ = std::fs::remove_file(&path);
}
