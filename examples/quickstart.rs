//! Quickstart: measure and forecast CPU availability on a simulated host.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Builds one of the paper's simulated hosts (`thing1`), runs the NWS CPU
//! monitor over two simulated hours (all three sensors, probe once a
//! minute, 10-second test process every 5 minutes), then replays the hybrid
//! series through the NWS forecaster and reports the paper's three error
//! metrics for this run.

use nws::core::monitor::{Monitor, MonitorConfig};
use nws::forecast::{evaluate_one_step, NwsForecaster};
use nws::sim::HostProfile;
use nws::stats::mean_absolute_pair_error;

fn main() {
    // 1. A simulated time-shared Unix workstation under interactive load.
    let mut host = HostProfile::Thing1.build(2026);

    // 2. The NWS CPU monitor: 10 s measurements, 1.5 s probe each minute,
    //    a ground-truth test process every 5 minutes.
    let monitor = Monitor::new(MonitorConfig {
        duration: 2.0 * 3600.0,
        warmup: 900.0,
        test_period: Some(300.0),
        ..MonitorConfig::default()
    });
    let out = monitor.run(&mut host);
    println!(
        "monitored {} for 2 simulated hours: {} measurements, {} probes, {} test runs",
        out.host,
        out.series.hybrid.len(),
        out.probes.len(),
        out.tests.len()
    );

    // 3. Measurement error (paper Eq. 3): sensor reading immediately before
    //    each test vs what the test process actually obtained.
    let observed: Vec<f64> = out.tests.iter().map(|t| t.value).collect();
    for (name, prior) in [
        (
            "load-average",
            out.tests.iter().map(|t| t.prior.load).collect::<Vec<_>>(),
        ),
        ("vmstat", out.tests.iter().map(|t| t.prior.vmstat).collect()),
        (
            "nws-hybrid",
            out.tests.iter().map(|t| t.prior.hybrid).collect(),
        ),
    ] {
        let err = mean_absolute_pair_error(&prior, &observed).unwrap_or(0.0);
        println!("measurement error [{name:>12}]: {:.1}%", err * 100.0);
    }

    // 4. One-step-ahead prediction error (paper Eq. 5): how well the NWS
    //    forecaster predicts the next hybrid measurement.
    let mut nws = NwsForecaster::nws_default();
    let report = evaluate_one_step(&mut nws, out.series.hybrid.values())
        .expect("series long enough to score");
    println!(
        "one-step prediction error [nws-hybrid]: {:.1}% (RMSE {:.1}%, n = {})",
        report.mae * 100.0,
        report.rmse * 100.0,
        report.n
    );

    // 5. A live forecast for the next 10-second interval.
    let forecast = nws.forecast().expect("forecaster is warm");
    println!(
        "forecast for the next interval: {:.0}% CPU available (method: {})",
        forecast.value * 100.0,
        forecast.method
    );
    println!(
        "=> a task needing 60 CPU-seconds should take ~{:.0}s here",
        nws::sched::predicted_runtime(60.0, forecast.value)
    );
}
