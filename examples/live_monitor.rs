//! Live host monitoring through `/proc` (Linux).
//!
//! ```sh
//! cargo run --release --example live_monitor [n_samples] [interval_secs]
//! ```
//!
//! Applies the paper's Eq. 1 (load average) and Eq. 2 (vmstat) availability
//! formulas to the machine this program runs on, using `/proc/loadavg` and
//! `/proc/stat`, feeds the measurements to the NWS forecaster, and prints a
//! one-step-ahead availability forecast after each sample. This is the
//! library operating as a real monitor rather than against the simulator.
//!
//! On non-Linux platforms the example explains itself and exits cleanly.

use nws::forecast::NwsForecaster;
use nws::sensors::proc::{ProcLoadAvgSensor, ProcVmstatSensor};
use std::thread::sleep;
use std::time::Duration;

fn main() {
    let mut args = std::env::args().skip(1);
    let samples: usize = args
        .next()
        .map(|s| s.parse().expect("sample count must be a number"))
        .unwrap_or(10);
    let interval: f64 = args
        .next()
        .map(|s| s.parse().expect("interval must be seconds"))
        .unwrap_or(1.0);

    let load_sensor = ProcLoadAvgSensor::new();
    let mut vmstat_sensor = ProcVmstatSensor::new();

    // Probe once to check we can read /proc at all.
    if let Err(e) = load_sensor.measure() {
        eprintln!("cannot read /proc/loadavg ({e}); this example needs Linux.");
        return;
    }
    // Prime the jiffy counters so the first reported interval is real.
    let _ = vmstat_sensor.measure();

    let mut nws = NwsForecaster::nws_default();
    println!(
        "{:>4} {:>12} {:>10} {:>18}",
        "#", "load-avail", "vm-avail", "forecast (method)"
    );
    for i in 1..=samples {
        sleep(Duration::from_secs_f64(interval));
        let load = load_sensor.measure().expect("loadavg readable");
        let vm = vmstat_sensor.measure().expect("stat readable");
        // Forecast the vmstat availability series (the more responsive of
        // the two passive methods at second-scale intervals).
        let forecast = nws.update(vm).expect("live after first sample");
        println!(
            "{i:>4} {:>11.1}% {:>9.1}% {:>11.1}% ({})",
            load * 100.0,
            vm * 100.0,
            forecast.value * 100.0,
            forecast.method
        );
    }
    if let Some(f) = nws.forecast() {
        println!(
            "\nnext-interval CPU availability forecast: {:.1}% — a 60 CPU-second job \
             should take ~{:.0}s",
            f.value * 100.0,
            nws::sched::predicted_runtime(60.0, f.value)
        );
    }
}
