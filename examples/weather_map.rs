//! A live "grid weather map": the miniature NWS over the six UCSD hosts.
//!
//! ```sh
//! cargo run --release --example weather_map
//! ```
//!
//! Runs the whole weather service — sensors on every host publishing into
//! the measurement memory on the 10-second NWS cadence, forecasters kept
//! warm per series — for two simulated hours, then prints the grid
//! snapshot a scheduler would consult: latest hybrid measurement, point
//! forecast, and a 90% prediction interval per host.

use nws::grid::{Metric, WeatherService};

fn main() {
    let mut ws = WeatherService::ucsd(2026);
    println!(
        "weather service: {} CPU resources + {} network resources",
        ws.cpu().registry().len(),
        ws.net_registry().len()
    );
    // Two simulated hours: CPU on the 10 s cadence, links on 2-min probes.
    ws.advance(7200.0);

    let snap = ws.cpu().snapshot();
    println!("\ngrid snapshot at t = {:.0}s:", snap.time);
    println!(
        "{:<11} {:>8} {:>10} {:>18}",
        "host", "latest", "forecast", "90% interval"
    );
    for h in &snap.hosts {
        let latest = h.latest_hybrid.expect("every host measured");
        let f = h.forecast.as_ref().expect("every forecaster live");
        let iv = f
            .interval
            .map(|iv| format!("[{:>4.0}%, {:>4.0}%]", iv.lo * 100.0, iv.hi * 100.0))
            .unwrap_or_else(|| "(warming)".to_string());
        println!(
            "{:<11} {:>7.0}% {:>9.0}% {:>18}",
            h.host,
            latest * 100.0,
            f.forecast.value * 100.0,
            iv
        );
    }
    let best = snap.best_host().expect("forecasts live");
    println!(
        "\nscheduler verdict: send the next task to {} ({:.0}% predicted availability)",
        best.host,
        best.forecast.as_ref().expect("live").forecast.value * 100.0
    );

    // The memory also serves raw history for offline analysis.
    let id = ws
        .cpu()
        .registry()
        .lookup("thing2", Metric::CpuAvailabilityHybrid)
        .expect("registered");
    let (times, values) = ws.cpu().memory().tail(id, 6);
    println!("\nlast minute of thing2 hybrid measurements:");
    for (t, v) in times.iter().zip(values) {
        println!("  t={t:>7.0}s  {:>4.0}%", v * 100.0);
    }

    // …and the network half reports the weather between sites.
    println!("\nnetwork weather:");
    for link in ["ucsd->utk", "ucsd->uva", "ucsd-lan"] {
        let f = ws.bandwidth_forecast(link).expect("links probed");
        let iv = f
            .interval
            .map(|iv| {
                format!(
                    " [{:.1}, {:.1}] Mbit/s",
                    iv.lo * 8.0 / 1e6,
                    iv.hi * 8.0 / 1e6
                )
            })
            .unwrap_or_default();
        println!(
            "  {:<10} forecast {:>6.2} Mbit/s{}",
            link,
            f.forecast.value * 8.0 / 1e6,
            iv
        );
    }
}
